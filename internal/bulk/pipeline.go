package bulk

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/admm"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/workload"
)

// Options configures one bulk pipeline run. The zero value is usable:
// GOMAXPROCS solve workers, serial executor, 1000-iteration budget.
type Options struct {
	// Workers is the solve-stage worker count (default GOMAXPROCS).
	// Records are routed to workers by shape key, so same-shape records
	// always solve sequentially in input order on one worker — that is
	// what makes warm-start chains deterministic.
	Workers int
	// DecodeWorkers/EncodeWorkers size the decode and encode pools
	// (default min(Workers, 4)).
	DecodeWorkers int
	EncodeWorkers int
	// Executor is the stream-level executor spec; a record's own
	// executor field replaces it wholesale for that record.
	Executor admm.ExecutorSpec
	// MaxIter is the default iteration budget for records that do not
	// set max_iter (default 1000). MaxIterLimit caps per-record
	// overrides (default 200000).
	MaxIter      int
	MaxIterLimit int
	// AbsTol/RelTol are the default stopping tolerances; a record's own
	// non-zero values override them.
	AbsTol, RelTol float64
	// Cache, when non-nil, is a shared graph cache (e.g. the serving
	// layer's); nil uses a private per-run cache. Built graphs are
	// returned to it when the run ends.
	Cache *graph.Cache
	// MaxLineBytes bounds one input line's payload, excluding the line
	// terminator (default 1 MiB). Longer lines become error records
	// without buffering the excess.
	MaxLineBytes int
	// Store, when non-nil, extends warm-start chains across runs: each
	// shape's chain is seeded from the store on first sight (a snapshot
	// whose shape does not match the built graph is rejected and the
	// solve runs cold), and each chain's final state is persisted when
	// the run ends. Chains that ended on a failed or panicked solve are
	// never persisted.
	Store SolutionStore
}

// SolutionStore is the persistence seam for warm-start chains; it is
// satisfied by *store.Store. Implementations must be safe for
// concurrent use — every solve worker calls Get.
type SolutionStore interface {
	Get(key string) (store.Snapshot, bool)
	Put(key string, snap store.Snapshot) error
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DecodeWorkers <= 0 {
		o.DecodeWorkers = min(o.Workers, 4)
	}
	if o.EncodeWorkers <= 0 {
		o.EncodeWorkers = min(o.Workers, 4)
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.MaxIterLimit <= 0 {
		o.MaxIterLimit = 200000
	}
	if o.Cache == nil {
		o.Cache = graph.NewCache(1)
	}
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = 1 << 20
	}
	return o
}

// Stats summarizes one pipeline run. Results/Errors count records
// actually written to the output; the solve counters count work
// performed, so on cancellation they can exceed the written records.
type Stats struct {
	// Lines is the number of non-blank input lines admitted.
	Lines uint64 `json:"lines"`
	// Results is the number of output records written; Errors of those
	// carried an error field.
	Results uint64 `json:"results"`
	Errors  uint64 `json:"errors"`
	// Solved counts successful solves; WarmStarts of those started from
	// a previous same-shape solution; Iterations is their total ADMM
	// iteration count.
	Solved     uint64 `json:"solved"`
	WarmStarts uint64 `json:"warm_starts"`
	Iterations uint64 `json:"iterations"`
	// CacheHits counts shapes bound from the graph cache instead of
	// built; Shapes is the number of distinct shape keys seen.
	CacheHits uint64 `json:"cache_hits"`
	Shapes    int    `json:"shapes"`
	// StoreHits counts shapes whose chain was seeded from the solution
	// store; StoreMisses counts first-sight lookups that found nothing
	// usable (absent, corrupt, or shape-mismatched); StoreSaves counts
	// chains persisted at stream end. All zero when Options.Store is nil.
	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
	StoreSaves  uint64 `json:"store_saves,omitempty"`
}

// rawLine is one length-capped input line with its record index.
type rawLine struct {
	seq    int
	data   []byte
	errMsg string // set for over-long lines; data is empty then
}

// task is a decoded record on its way to a solve worker (or, when
// errMsg is set, straight to the output as an error record).
type task struct {
	seq    int
	req    Request
	adm    workload.Admission
	errMsg string
}

// encoded is one rendered output record awaiting its turn at the
// writer. The scratch buffer returns to the pool after the write.
type encoded struct {
	seq   int
	isErr bool
	s     *encodeScratch
}

type encodeScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// shapeState is the per-shape solve state a worker carries across the
// stream: the built problem (one graph.Cache entry) and the warm-start
// snapshot of its last solution. Shape-affine routing guarantees a
// single worker touches it.
type shapeState struct {
	prob workload.Problem
	warm admm.WarmState
	// storeChecked marks that the one-per-shape store lookup happened;
	// dirty marks that warm holds a snapshot from a successful solve
	// that the store does not have yet (cleared whenever a failed or
	// panicked solve resets the chain); iterations is the iteration
	// count of the solve that produced the snapshot.
	storeChecked bool
	dirty        bool
	iterations   int
}

type pipeline struct {
	ctx  context.Context
	opts Options

	mu     sync.Mutex
	shapes map[string]*shapeState

	scratch sync.Pool

	lines      atomic.Uint64
	results    atomic.Uint64
	errs       atomic.Uint64
	solved     atomic.Uint64
	warmStarts atomic.Uint64
	iterations atomic.Uint64
	cacheHits  atomic.Uint64

	storeHits   atomic.Uint64
	storeMisses atomic.Uint64
	storeSaves  atomic.Uint64
}

// send delivers v unless the context is done first.
func send[T any](ctx context.Context, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run streams JSONL requests from r through the staged pipeline and
// writes JSONL results to w in input order. Per-record failures become
// error records on the stream; Run itself only fails on input read
// errors, output write errors, or context cancellation. On
// cancellation all stages drain and every goroutine exits before Run
// returns — including the reader, so a canceled Run blocks until the
// in-flight r.Read returns. Callers whose cancellation does not also
// unblock r (net/http request bodies unblock on the connection
// teardown that cancels the request context; files and pipes with
// data never block) must arrange that themselves.
func Run(ctx context.Context, r io.Reader, w io.Writer, opts Options) (Stats, error) {
	p := &pipeline{ctx: ctx, opts: opts.withDefaults(), shapes: map[string]*shapeState{}}
	p.scratch.New = func() any {
		s := &encodeScratch{}
		s.enc = json.NewEncoder(&s.buf)
		return s
	}

	linesCh := make(chan rawLine, 16)
	decodedCh := make(chan *task, 16)
	solveChs := make([]chan *task, p.opts.Workers)
	for i := range solveChs {
		solveChs[i] = make(chan *task, 4)
	}
	resultsCh := make(chan Result, 16)
	encodedCh := make(chan encoded, 16)

	// The reader's error travels over a buffered channel so the
	// goroutine can deposit it and exit unconditionally; Run joins it
	// with a blocking receive once the downstream stages have unwound.
	readErrCh := make(chan error, 1)
	go func() {
		readErrCh <- p.read(r, linesCh)
		close(linesCh)
	}()

	var decWG sync.WaitGroup
	for i := 0; i < p.opts.DecodeWorkers; i++ {
		decWG.Add(1)
		go func() {
			defer decWG.Done()
			p.decode(linesCh, decodedCh)
		}()
	}
	go func() {
		decWG.Wait()
		close(decodedCh)
	}()

	// resultsCh is fed by the dispatcher (error records) and every
	// solve worker; it closes when all of them are done.
	var resWG sync.WaitGroup
	resWG.Add(1 + p.opts.Workers)
	go func() {
		defer resWG.Done()
		p.dispatch(decodedCh, solveChs, resultsCh)
		for _, ch := range solveChs {
			close(ch)
		}
	}()
	for i := 0; i < p.opts.Workers; i++ {
		go func(ch <-chan *task) {
			defer resWG.Done()
			p.solve(ch, resultsCh)
		}(solveChs[i])
	}
	go func() {
		resWG.Wait()
		close(resultsCh)
	}()

	var encWG sync.WaitGroup
	for i := 0; i < p.opts.EncodeWorkers; i++ {
		encWG.Add(1)
		go func() {
			defer encWG.Done()
			p.encode(resultsCh, encodedCh)
		}()
	}
	go func() {
		encWG.Wait()
		close(encodedCh)
	}()

	writeErr := p.write(w, encodedCh)

	// write returning means the encode stage closed encodedCh, but on
	// cancellation the solve stage can still be mid-record (encode
	// workers exit on ctx.Done without draining resultsCh). Join every
	// stage before touching p.shapes: solve workers create entries via
	// p.shape and mutate shapeState, and a graph still being solved
	// must not be published into a shared cache. All of these waits
	// terminate — once the context is done every stage's receives and
	// sends fall through to ctx.Done, and the reader deposits its error
	// as soon as the in-flight r.Read returns.
	resWG.Wait()
	decWG.Wait()
	encWG.Wait()
	readErr := <-readErrCh

	// Persist each chain's final snapshot, then return built graphs to
	// the cache for the next stream (or the serving layer's other
	// handlers). Only dirty chains are written: a chain whose last solve
	// failed or panicked was reset and must not poison the store.
	for key, st := range p.shapes {
		if p.opts.Store != nil && st.dirty && st.warm.Captured() {
			if err := p.opts.Store.Put(key, store.Snapshot{Warm: st.warm, Iterations: st.iterations}); err == nil {
				p.storeSaves.Add(1)
			}
		}
		if st.prob != nil {
			p.opts.Cache.Put(key, st.prob)
		}
	}

	stats := Stats{
		Lines:      p.lines.Load(),
		Results:    p.results.Load(),
		Errors:     p.errs.Load(),
		Solved:     p.solved.Load(),
		WarmStarts: p.warmStarts.Load(),
		Iterations: p.iterations.Load(),
		CacheHits:  p.cacheHits.Load(),
		Shapes:     len(p.shapes),

		StoreHits:   p.storeHits.Load(),
		StoreMisses: p.storeMisses.Load(),
		StoreSaves:  p.storeSaves.Load(),
	}
	switch {
	case writeErr != nil:
		return stats, fmt.Errorf("bulk: write output: %w", writeErr)
	case readErr != nil:
		return stats, fmt.Errorf("bulk: read input: %w", readErr)
	default:
		return stats, ctx.Err()
	}
}

// read splits the input into length-capped lines, assigning each
// non-blank line its record index. Over-long lines are consumed (not
// buffered) and forwarded as error records.
func (p *pipeline) read(r io.Reader, out chan<- rawLine) error {
	br := bufio.NewReaderSize(r, 64<<10)
	seq := 0
	for {
		if p.ctx.Err() != nil {
			return nil
		}
		line, tooLong, err := readLine(br, p.opts.MaxLineBytes)
		switch {
		case tooLong:
			p.lines.Add(1)
			if !send(p.ctx, out, rawLine{seq: seq, errMsg: fmt.Sprintf("line exceeds %d bytes", p.opts.MaxLineBytes)}) {
				return nil
			}
			seq++
		case len(bytes.TrimSpace(line)) > 0:
			p.lines.Add(1)
			if !send(p.ctx, out, rawLine{seq: seq, data: line}) {
				return nil
			}
			seq++
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// readLine reads up to and including the next newline, accumulating a
// payload of at most max bytes — the line terminator is not counted
// against the cap, so a payload of exactly max bytes is accepted. Past
// the cap it keeps consuming (so the stream stays framed) but stops
// buffering and reports tooLong.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, e := br.ReadSlice('\n')
		if !tooLong {
			n := len(buf) + len(frag)
			if len(frag) > 0 && frag[len(frag)-1] == '\n' {
				n--
			}
			if n > max {
				tooLong = true
				buf = nil
			} else {
				buf = append(buf, frag...)
			}
		}
		if e == bufio.ErrBufferFull {
			continue
		}
		return buf, tooLong, e
	}
}

// decode turns raw lines into validated tasks: strict envelope decode,
// workload admission (spec validation + shape key), per-record control
// validation. Failures ride along as error tasks.
func (p *pipeline) decode(in <-chan rawLine, out chan<- *task) {
	for {
		var l rawLine
		var ok bool
		select {
		case l, ok = <-in:
			if !ok {
				return
			}
		case <-p.ctx.Done():
			return
		}
		t := &task{seq: l.seq, errMsg: l.errMsg}
		if t.errMsg == "" {
			req, err := DecodeLine(l.data)
			if err != nil {
				t.errMsg = err.Error()
			} else {
				t.req = req
				adm, err := workload.Parse(req.Workload, req.Spec)
				t.adm = adm
				if err != nil {
					t.errMsg = err.Error()
				} else if err := req.validate(p.opts.MaxIterLimit); err != nil {
					t.errMsg = err.Error()
				}
			}
		}
		if !send(p.ctx, out, t) {
			return
		}
	}
}

// shapeWorker routes a shape key to a solve worker (FNV-1a). All
// records of one shape land on one worker, in input order.
func shapeWorker(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// dispatch restores input order on the decoded stream (decode workers
// race), then routes each task: error tasks straight to the results
// stage, solvable tasks to their shape's worker. In-order dispatch is
// what makes warm-start chains follow input order.
func (p *pipeline) dispatch(in <-chan *task, solveChs []chan *task, results chan<- Result) {
	pending := map[int]*task{}
	next := 0
	handle := func(t *task) bool {
		if t.errMsg != "" {
			return send(p.ctx, results, Result{Seq: t.seq, ID: t.req.ID, Workload: t.adm.Workload, Error: t.errMsg})
		}
		return send(p.ctx, solveChs[shapeWorker(t.adm.Key, len(solveChs))], t)
	}
	for {
		select {
		case t, ok := <-in:
			if !ok {
				return
			}
			pending[t.seq] = t
			for {
				t2, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !handle(t2) {
					return
				}
				next++
			}
		case <-p.ctx.Done():
			return
		}
	}
}

// shape returns the state entry for a key, creating it on first sight.
// The map is shared (hence the lock) but each entry is only ever
// touched by its shape's worker.
func (p *pipeline) shape(key string) *shapeState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.shapes[key]
	if !ok {
		st = &shapeState{}
		p.shapes[key] = st
	}
	return st
}

// solve runs one worker's share of the stream: bind the shape's
// problem (cache hit or build), warm-start from the shape's previous
// solution when one exists, solve, capture the new solution.
func (p *pipeline) solve(in <-chan *task, results chan<- Result) {
	for {
		var t *task
		var ok bool
		select {
		case t, ok = <-in:
			if !ok {
				return
			}
		case <-p.ctx.Done():
			return
		}
		if !send(p.ctx, results, p.solveOne(t)) {
			return
		}
	}
}

func (p *pipeline) solveOne(t *task) (res Result) {
	res = Result{Seq: t.seq, ID: t.req.ID, Workload: t.adm.Workload, Shape: t.adm.Key}
	var st *shapeState
	defer func() {
		// The sockets transport is fail-stop by panic; a record using it
		// must not take the stream down.
		if r := recover(); r != nil {
			if st != nil {
				// A panic mid-solve leaves the graph in an unknown state:
				// the chain's snapshot can no longer be trusted, so the
				// next record of this shape starts cold and the poisoned
				// chain is never persisted.
				st.warm = admm.WarmState{}
				st.dirty = false
			}
			res = Result{Seq: t.seq, ID: t.req.ID, Workload: t.adm.Workload, Shape: t.adm.Key,
				Error: fmt.Sprintf("solve panic: %v", r)}
		}
	}()

	st = p.shape(t.adm.Key)
	if st.prob == nil {
		if pooled, hit := p.opts.Cache.Get(t.adm.Key); hit {
			if prob, isProb := pooled.(workload.Problem); isProb {
				st.prob = prob
				p.cacheHits.Add(1)
			} else {
				p.opts.Cache.Put(t.adm.Key, pooled)
			}
		}
		if st.prob == nil {
			prob, err := t.adm.Build()
			if err != nil {
				res.Error = err.Error()
				return res
			}
			st.prob = prob
		}
	}

	spec := p.opts.Executor
	if t.req.Executor != nil {
		spec = *t.req.Executor
	}
	if spec.Kind == admm.ExecSharded && spec.Transport == admm.TransportSockets {
		spec.Problem = &admm.ProblemRef{Workload: t.adm.Workload, Spec: append([]byte(nil), t.req.Spec...)}
	}
	sopts := admm.SolveOptions{
		Executor: spec,
		MaxIter:  p.opts.MaxIter,
		AbsTol:   p.opts.AbsTol,
		RelTol:   p.opts.RelTol,
		OnIteration: func(int, float64, float64) bool {
			return p.ctx.Err() == nil
		},
	}
	if t.req.MaxIter > 0 {
		sopts.MaxIter = t.req.MaxIter
	}
	if t.req.AbsTol > 0 {
		sopts.AbsTol = t.req.AbsTol
	}
	if t.req.RelTol > 0 {
		sopts.RelTol = t.req.RelTol
	}

	g := st.prob.FactorGraph()

	// First record of a shape: try to seed the chain from the solution
	// store. Apply's shape guard vets the snapshot against the built
	// graph, so a stale or corrupt entry (wrong shape for its key) is
	// rejected and the record solves cold — the store can cost
	// iterations, never correctness.
	if p.opts.Store != nil && !st.storeChecked {
		st.storeChecked = true
		if !st.warm.Captured() {
			if snap, ok := p.opts.Store.Get(t.adm.Key); ok && snap.Warm.Apply(g) == nil {
				st.warm = snap.Warm
				p.storeHits.Add(1)
			} else {
				p.storeMisses.Add(1)
			}
		}
	}

	warm := st.warm.Captured()
	if warm {
		sopts.Warm = &st.warm
	} else {
		st.prob.Reset()
	}

	r, err := admm.Solve(g, sopts)
	if err != nil {
		// The graph's state is suspect after a failed solve; drop the
		// warm snapshot so the next record of this shape starts cold,
		// and never persist the poisoned chain.
		st.warm = admm.WarmState{}
		st.dirty = false
		res.Error = err.Error()
		return res
	}
	st.warm.Capture(g)
	st.dirty = true
	st.iterations = r.Iterations

	res.Warm = warm
	res.Iterations = r.Iterations
	res.Converged = r.Converged
	res.Metrics = cleanMetrics(st.prob.Metrics())
	p.solved.Add(1)
	if warm {
		p.warmStarts.Add(1)
	}
	p.iterations.Add(uint64(r.Iterations))
	return res
}

// encode renders result records into pooled scratch buffers.
func (p *pipeline) encode(in <-chan Result, out chan<- encoded) {
	for {
		var res Result
		var ok bool
		select {
		case res, ok = <-in:
			if !ok {
				return
			}
		case <-p.ctx.Done():
			return
		}
		s := p.scratch.Get().(*encodeScratch)
		s.buf.Reset()
		if err := s.enc.Encode(res); err != nil {
			// Results are plain structs over finite floats; this is
			// unreachable short of memory corruption, but keep the
			// record rather than dropping a seq.
			s.buf.Reset()
			fmt.Fprintf(&s.buf, `{"seq":%d,"error":"encode: %s"}`+"\n", res.Seq, err)
		}
		if !send(p.ctx, out, encoded{seq: res.Seq, isErr: res.Error != "", s: s}) {
			p.scratch.Put(s)
			return
		}
	}
}

// write restores input order and streams records out. On a write
// error (client gone) it keeps draining so upstream stages unwind, but
// writes nothing further.
func (p *pipeline) write(w io.Writer, in <-chan encoded) error {
	pending := map[int]encoded{}
	next := 0
	var writeErr error
	for e := range in {
		pending[e.seq] = e
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if writeErr == nil {
				if _, err := w.Write(cur.s.buf.Bytes()); err != nil {
					writeErr = err
				} else {
					p.results.Add(1)
					if cur.isErr {
						p.errs.Add(1)
					}
				}
			}
			p.scratch.Put(cur.s)
			next++
		}
	}
	// On cancellation seq gaps can strand later records; release them.
	for _, e := range pending {
		p.scratch.Put(e.s)
	}
	return writeErr
}
