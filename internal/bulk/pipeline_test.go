package bulk

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func decodeResults(t *testing.T, out []byte) []Result {
	t.Helper()
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad output line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestPipelineWarmChains pins the tentpole semantics on a small mixed
// stream: output order matches input order, the first record of each
// shape is cold, every later same-shape record is warm and converges
// in fewer iterations, and a malformed line in the middle becomes an
// error record without disturbing its neighbors.
func TestPipelineWarmChains(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&in, `{"id":"a%d","workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":5000,"abs_tol":1e-6,"rel_tol":1e-6}`+"\n", i)
		fmt.Fprintf(&in, `{"id":"b%d","workload":"svm","spec":{"n":24,"dim":2},"max_iter":5000,"abs_tol":1e-6,"rel_tol":1e-6}`+"\n", i)
	}
	in.WriteString("{broken\n")
	in.WriteString(`{"id":"a4","workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":5000,"abs_tol":1e-6,"rel_tol":1e-6}` + "\n")

	var out bytes.Buffer
	stats, err := Run(context.Background(), strings.NewReader(in.String()), &out, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	results := decodeResults(t, out.Bytes())
	if len(results) != 10 {
		t.Fatalf("got %d results, want 10", len(results))
	}

	coldIters := map[string]int{}
	for i, res := range results {
		if res.Seq != i {
			t.Fatalf("result %d has seq %d — output order broken", i, res.Seq)
		}
		if i == 8 {
			if res.Error == "" {
				t.Fatalf("malformed line produced a non-error record: %+v", res)
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("record %d failed: %s", i, res.Error)
		}
		if !res.Converged {
			t.Fatalf("record %d did not converge in %d iterations", i, res.Iterations)
		}
		prev, seen := coldIters[res.Shape]
		if !seen {
			if res.Warm {
				t.Fatalf("first record of shape %q marked warm", res.Shape)
			}
			coldIters[res.Shape] = res.Iterations
			continue
		}
		if !res.Warm {
			t.Fatalf("repeat record %d of shape %q not warm-started", i, res.Shape)
		}
		if res.Iterations >= prev {
			t.Fatalf("warm record %d took %d iterations, cold took %d", i, res.Iterations, prev)
		}
	}

	if stats.Lines != 10 || stats.Results != 10 || stats.Errors != 1 {
		t.Fatalf("stats = %+v, want 10 lines, 10 results, 1 error", stats)
	}
	if stats.Solved != 9 || stats.WarmStarts != 7 || stats.Shapes != 2 {
		t.Fatalf("stats = %+v, want 9 solved, 7 warm, 2 shapes", stats)
	}
}

// TestPipelineDeterministicAcrossWorkers pins the byte-determinism
// contract: the same stream through 1, 3, and more-workers-than-shapes
// pipelines yields identical output bytes (this is what lets CI diff
// the CLI against the serving endpoint).
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	var in bytes.Buffer
	if err := Generate(&in, 120, 7); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, workers := range []int{1, 3, 16} {
		var out bytes.Buffer
		if _, err := Run(context.Background(), bytes.NewReader(in.Bytes()), &out,
			Options{Workers: workers, DecodeWorkers: 3, EncodeWorkers: 3}); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = out.Bytes()
			continue
		}
		if !bytes.Equal(want, out.Bytes()) {
			t.Fatalf("output with %d workers differs from 1-worker output", workers)
		}
	}
}

// TestPipelineSharedCacheConcurrent runs two pipelines concurrently
// over one shared graph cache — the serving layer's deployment shape —
// under more workers than shapes. The race detector owns the
// correctness half; the assertions pin that both streams complete with
// every record accounted for.
func TestPipelineSharedCacheConcurrent(t *testing.T) {
	cache := graph.NewCache(2)
	var in bytes.Buffer
	if err := Generate(&in, 80, 11); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			var out bytes.Buffer
			stats, err := Run(context.Background(), bytes.NewReader(in.Bytes()), &out,
				Options{Workers: 12, Cache: cache})
			if err == nil && stats.Results != stats.Lines {
				err = fmt.Errorf("wrote %d results for %d lines", stats.Results, stats.Lines)
			}
			errCh <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Size == 0 {
		t.Fatal("no graphs returned to the shared cache after the runs")
	}
}

// slowWriter blocks each write until released, then fails — forcing
// records to pile up against backpressure while cancellation lands.
type slowWriter struct {
	firstWrite chan struct{}
	release    chan struct{}
	wrote      bool
}

func (w *slowWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		close(w.firstWrite)
	}
	<-w.release
	return len(b), nil
}

// TestPipelineCancellation cancels mid-stream against a stalled writer
// and requires Run to drain and return promptly with the context error,
// leaking no goroutines.
func TestPipelineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	var in bytes.Buffer
	if err := Generate(&in, 5000, 3); err != nil {
		t.Fatal(err)
	}
	// An unbounded reader after the generated prefix: cancellation must
	// win even though input never runs out.
	input := io.MultiReader(bytes.NewReader(in.Bytes()), neverEnding{})

	ctx, cancel := context.WithCancel(context.Background())
	w := &slowWriter{firstWrite: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, input, w, Options{Workers: 8})
		done <- err
	}()

	<-w.firstWrite
	cancel()
	close(w.release)

	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	// Give exiting goroutines a beat, then require the count back near
	// the baseline (other tests' leftovers make exact equality brittle).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// neverEnding yields blank lines forever.
type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = '\n'
	}
	return len(p), nil
}

// gateReader signals when a Read is in flight and blocks it until
// released, then reports EOF.
type gateReader struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateReader) Read(p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return 0, io.EOF
}

// TestRunJoinsReader pins that a canceled Run does not return while its
// reader goroutine is still inside r.Read — the contract that lets the
// serving handler hand Run the request body without the body being
// read after the handler returns.
func TestRunJoinsReader(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g := &gateReader{entered: make(chan struct{}), release: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, g, io.Discard, Options{Workers: 1})
		done <- err
	}()

	<-g.entered
	cancel()
	select {
	case <-done:
		t.Fatal("Run returned while its reader was still blocked in Read")
	case <-time.After(100 * time.Millisecond):
	}

	close(g.release)
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after the reader unblocked")
	}
}

// TestReadLineCapBoundary pins that MaxLineBytes bounds the payload,
// not payload plus terminator: a line of exactly the cap is accepted,
// one byte more is rejected, and framing survives both — with and
// without a trailing newline at EOF.
func TestReadLineCapBoundary(t *testing.T) {
	const max = 64
	exact := strings.Repeat("a", max)
	over := strings.Repeat("b", max+1)
	br := bufio.NewReaderSize(strings.NewReader(exact+"\n"+over+"\n"+exact), 16)

	line, tooLong, err := readLine(br, max)
	if err != nil || tooLong || string(line) != exact+"\n" {
		t.Fatalf("exact-cap line: tooLong=%v err=%v len=%d", tooLong, err, len(line))
	}
	line, tooLong, err = readLine(br, max)
	if err != nil || !tooLong || len(line) != 0 {
		t.Fatalf("cap+1 line: tooLong=%v err=%v len=%d", tooLong, err, len(line))
	}
	line, tooLong, err = readLine(br, max)
	if err != io.EOF || tooLong || string(line) != exact {
		t.Fatalf("unterminated exact-cap line: tooLong=%v err=%v len=%d", tooLong, err, len(line))
	}
}

// TestPipelineLineCap pins over-long line handling: the line becomes an
// error record (without buffering the payload) and framing recovers on
// the next line.
func TestPipelineLineCap(t *testing.T) {
	long := `{"workload":"lasso","spec":{"m":32,"pad":"` + strings.Repeat("x", 4096) + `"}}`
	in := long + "\n" + `{"workload":"lasso","spec":{"m":16,"lambda":0.3},"max_iter":50}` + "\n"
	var out bytes.Buffer
	_, err := Run(context.Background(), strings.NewReader(in), &out, Options{Workers: 1, MaxLineBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	results := decodeResults(t, out.Bytes())
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if !strings.Contains(results[0].Error, "exceeds") {
		t.Fatalf("over-long line produced %+v, want a line-cap error", results[0])
	}
	if results[1].Error != "" || results[1].Iterations != 50 {
		t.Fatalf("record after the over-long line broken: %+v", results[1])
	}
}

// TestPipelinePerRecordExecutor pins that a record-level executor
// override is honored and an invalid one fails only that record.
func TestPipelinePerRecordExecutor(t *testing.T) {
	in := `{"workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":60,"executor":{"kind":"parallel-for","workers":2}}
{"workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":60,"executor":{"kind":"warp-drive"}}
{"workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":60}
`
	var out bytes.Buffer
	if _, err := Run(context.Background(), strings.NewReader(in), &out, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	results := decodeResults(t, out.Bytes())
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Error != "" || results[0].Iterations != 60 {
		t.Fatalf("parallel-for record broken: %+v", results[0])
	}
	if !strings.Contains(results[1].Error, "warp-drive") {
		t.Fatalf("invalid executor record produced %+v", results[1])
	}
	if results[2].Error != "" {
		t.Fatalf("record after executor failure broken: %+v", results[2])
	}
}
