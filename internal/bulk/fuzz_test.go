package bulk

import (
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// FuzzBulkLineDecode drives the bulk stream's per-line admission path —
// strict envelope decode, per-record control validation, workload spec
// admission — with arbitrary bytes: no input may panic, any accepted
// line must re-encode to an envelope that decodes back to the same
// request, and any admitted spec must carry a usable shape key.
//
// Run as a regression suite by plain `go test` over the seed corpus;
// run `go test -fuzz=FuzzBulkLineDecode ./internal/bulk` to explore.
func FuzzBulkLineDecode(f *testing.F) {
	for _, seed := range []string{
		`{"workload":"lasso","spec":{"m":64,"lambda":0.3}}`,
		`{"id":"r1","workload":"svm","spec":{"n":24,"dim":2},"max_iter":500,"abs_tol":1e-4,"rel_tol":1e-4}`,
		`{"workload":"mpc","spec":{"k":8},"executor":{"kind":"parallel-for","workers":2}}`,
		`{"workload":"packing","spec":{"n":4,"seed":3},"executor":{"kind":"sharded","shards":2,"transport":"sockets"}}`,
		`{"workload":"lasso","spec":{"m":32},"max_iter":-5}`,
		`{"workload":"lasso","spec":{"m":32},"abs_tol":-1}`,
		`{"workload":"lasso","spec":{"m":32},"bogus":true}`,
		`{"workload":"qp","spec":{"n":4}}`,
		`{"workload":"lasso","spec":{"m":32}} trailing`,
		`{broken`,
		``,
		`null`,
		`[1,2]`,
		`"just a string"`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeLine(line)
		if err != nil {
			return
		}
		// Round-trip: an accepted envelope re-encodes losslessly.
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := DecodeLine(enc)
		if err != nil {
			t.Fatalf("re-encoded request %s does not decode: %v", enc, err)
		}
		if again.ID != req.ID || again.Workload != req.Workload ||
			again.MaxIter != req.MaxIter || again.AbsTol != req.AbsTol || again.RelTol != req.RelTol {
			t.Fatalf("round trip changed the request: %+v vs %+v", again, req)
		}
		// Control validation and spec admission must classify, not panic.
		if err := req.validate(200000); err != nil {
			return
		}
		adm, err := workload.Parse(req.Workload, req.Spec)
		if err != nil {
			return
		}
		if adm.Key == "" || adm.Build == nil {
			t.Fatalf("admitted line %q with key %q, nil build %t", line, adm.Key, adm.Build == nil)
		}
	})
}
