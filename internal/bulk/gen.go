package bulk

import (
	"fmt"
	"io"
	"math/rand"
)

// genShapes is the mixed-workload shape set the generator cycles
// through: small instances of all four problem families so a generated
// stream exercises every admission parser, convex and nonconvex
// solves, and several distinct warm-start chains.
var genShapes = []struct {
	workload string
	spec     string
}{
	{"lasso", `{"m":32,"lambda":0.3}`},
	{"svm", `{"n":24,"dim":2}`},
	{"lasso", `{"m":48,"lambda":0.3}`},
	{"mpc", `{"k":8}`},
	{"svm", `{"n":40,"dim":2}`},
	{"packing", `{"n":4,"seed":3}`},
}

// Generate writes a deterministic n-record JSONL request stream: the
// shape mix above in seeded-shuffled order, with a sprinkling of
// malformed lines (roughly 1 in 250) to exercise per-record error
// isolation. The same (n, seed) always produces the same bytes, so a
// generated stream can be replayed against the CLI and the serving
// endpoint and the outputs diffed.
func Generate(w io.Writer, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Intn(250) == 0 {
			// Malformed on purpose: truncated JSON, unknown workload,
			// or an oversize spec — each a different admission failure.
			bad := [...]string{
				`{"workload":"lasso","spec":{"m":32`,
				`{"workload":"qp","spec":{"n":4}}`,
				`{"workload":"svm","spec":{"n":999999}}`,
			}[rng.Intn(3)]
			if _, err := fmt.Fprintln(w, bad); err != nil {
				return err
			}
			continue
		}
		s := genShapes[rng.Intn(len(genShapes))]
		line := fmt.Sprintf(`{"id":"r%06d","workload":"%s","spec":%s,"max_iter":2000,"abs_tol":1e-4,"rel_tol":1e-4}`,
			i, s.workload, s.spec)
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
