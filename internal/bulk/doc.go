// Package bulk implements the streaming bulk solve pipeline: a stream
// of JSONL problem specs in, a stream of JSONL results out, with
// everything the per-request path pays per spec — parse, factor-graph
// construction, cold ADMM iterations, encode scratch — amortized across
// the stream.
//
// The pipeline is staged, each stage a bounded worker pool connected by
// bounded channels (backpressure propagates from the writer back to the
// reader; a slow consumer slows admission instead of ballooning memory):
//
//	read    one goroutine splits the input into length-capped lines
//	decode  strict JSONL envelope decode + workload admission
//	        (internal/workload.Parse: spec validation and size caps)
//	group   a resequencer/dispatcher routes records to solve workers
//	        by shape key, so same-shape specs land on the same worker
//	        in input order
//	solve   shape-affine workers hold one graph.Cache entry per shape
//	        and a warm-start snapshot (admm.WarmState): the first record
//	        of a shape solves cold, later records warm-start from the
//	        previous solution of that shape
//	encode  workers render result records with pooled scratch buffers
//	write   one goroutine restores input order and streams results out
//
// Per-record failures — malformed or over-long lines, unknown
// workloads, spec violations, solve errors, even a sharded transport
// panic — are isolated into error records on the output stream; the
// pipeline keeps going. Output order always matches input order, and
// records carry no wall-clock fields, so two runs over the same stream
// (or the CLI and the serving endpoint fed the same body) produce
// byte-identical output.
//
// The pipeline is exposed two ways: cmd/paradmm-bulk (stdin → stdout)
// and POST /v1/bulk in internal/serve (chunked JSONL response). See
// docs/bulk.md for the record schema and warm-start semantics.
package bulk
