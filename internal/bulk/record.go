package bulk

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/admm"
)

// Request is one input record of the bulk stream: a workload spec plus
// optional per-record solve controls. Unknown fields are admission
// errors (strict decode), matching the per-request serving envelope.
type Request struct {
	// ID is an optional caller-supplied correlation tag echoed on the
	// result record.
	ID string `json:"id,omitempty"`
	// Workload names the problem family (lasso | svm | mpc | packing).
	Workload string `json:"workload"`
	// Spec is the workload's raw spec object, validated by
	// internal/workload.Parse.
	Spec json.RawMessage `json:"spec"`
	// Executor optionally overrides the stream-level executor spec for
	// this record.
	Executor *admm.ExecutorSpec `json:"executor,omitempty"`
	// MaxIter/AbsTol/RelTol override the stream-level iteration budget
	// and stopping tolerances when non-zero.
	MaxIter int     `json:"max_iter,omitempty"`
	AbsTol  float64 `json:"abs_tol,omitempty"`
	RelTol  float64 `json:"rel_tol,omitempty"`
}

// Result is one output record. Records carry no wall-clock fields on
// purpose: the output stream is a pure function of the input stream and
// the pipeline options, so independent runs (and the CLI vs the serving
// endpoint) can be diffed byte-for-byte.
type Result struct {
	// Seq is the zero-based input record index; output order matches.
	Seq int `json:"seq"`
	// ID echoes the request's correlation tag.
	ID string `json:"id,omitempty"`
	// Workload/Shape identify what was solved: the canonical workload
	// name and the shape key the record was grouped (and warm-started)
	// under.
	Workload string `json:"workload,omitempty"`
	Shape    string `json:"shape,omitempty"`
	// Warm reports whether this solve started from the previous
	// solution of the same shape instead of a cold init.
	Warm bool `json:"warm,omitempty"`
	// Iterations/Converged report how the solve stopped.
	Iterations int  `json:"iterations,omitempty"`
	Converged  bool `json:"converged,omitempty"`
	// Metrics carries the workload's quality numbers (non-finite values
	// are dropped: they are not representable in JSON).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Error, when non-empty, marks a failed record; the other solve
	// fields are zero. Failures are per-record: the stream continues.
	Error string `json:"error,omitempty"`
}

// DecodeLine strictly decodes one JSONL input line into a Request.
// Unknown envelope fields are errors; spec-level validation is the
// workload admission layer's job.
func DecodeLine(line []byte) (Request, error) {
	var req Request
	dec := json.NewDecoder(strings.NewReader(string(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("decode: %v", err)
	}
	// A second document on the same line is a framing error, not data.
	if dec.More() {
		return Request{}, fmt.Errorf("decode: trailing data after request object")
	}
	return req, nil
}

// validate checks the per-record solve controls against the stream
// limits. It runs on the decode stage so solve workers only ever see
// well-formed work.
func (r *Request) validate(maxIterLimit int) error {
	if r.Executor != nil {
		if err := r.Executor.Validate(); err != nil {
			return err
		}
	}
	if r.MaxIter < 0 || r.MaxIter > maxIterLimit {
		return fmt.Errorf("max_iter = %d, need 0..%d", r.MaxIter, maxIterLimit)
	}
	if r.AbsTol < 0 || r.RelTol < 0 || math.IsNaN(r.AbsTol) || math.IsNaN(r.RelTol) ||
		math.IsInf(r.AbsTol, 0) || math.IsInf(r.RelTol, 0) {
		return fmt.Errorf("abs_tol/rel_tol must be finite and >= 0")
	}
	return nil
}

// cleanMetrics drops non-finite metric values in place and returns the
// map (encoding/json rejects NaN/Inf; a workload metric like packing's
// min_radius can be NaN on a degenerate solve).
func cleanMetrics(m map[string]float64) map[string]float64 {
	for k, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			delete(m, k)
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}
