package bulk

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/admm"
	"repro/internal/graph"
	"repro/internal/prox"
	"repro/internal/store"
	"repro/internal/workload"
)

const storeLassoLine = `{"id":"%s","workload":"lasso","spec":{"m":32,"lambda":0.3},"max_iter":5000,"abs_tol":1e-6,"rel_tol":1e-6}` + "\n"

func storeLassoStream(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, storeLassoLine, fmt.Sprintf("r%d", i))
	}
	return b.String()
}

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestPipelineStoreReuse is the cross-run warm-start contract: a first
// run over an empty store solves cold and persists its chain; a second
// run over the same store seeds from it, so even the FIRST record of
// the shape is warm and converges in fewer iterations than the first
// run's cold open.
func TestPipelineStoreReuse(t *testing.T) {
	s := openTestStore(t)
	in := storeLassoStream(3)

	var out1 bytes.Buffer
	stats1, err := Run(context.Background(), strings.NewReader(in), &out1, Options{Workers: 2, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.StoreHits != 0 || stats1.StoreMisses != 1 || stats1.StoreSaves != 1 {
		t.Fatalf("first run store stats = %+v, want 0 hits, 1 miss, 1 save", stats1)
	}
	res1 := decodeResults(t, out1.Bytes())
	if res1[0].Warm {
		t.Fatal("first run's first record warm over an empty store")
	}

	var out2 bytes.Buffer
	stats2, err := Run(context.Background(), strings.NewReader(in), &out2, Options{Workers: 2, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StoreHits != 1 || stats2.StoreMisses != 0 {
		t.Fatalf("second run store stats = %+v, want 1 hit, 0 misses", stats2)
	}
	res2 := decodeResults(t, out2.Bytes())
	if !res2[0].Warm {
		t.Fatal("second run's first record not seeded from the store")
	}
	if res2[0].Iterations >= res1[0].Iterations {
		t.Fatalf("store-warm open took %d iterations, cold open took %d", res2[0].Iterations, res1[0].Iterations)
	}
	for _, r := range res2 {
		if r.Error != "" || !r.Converged {
			t.Fatalf("store-seeded run produced a bad record: %+v", r)
		}
	}
}

// TestPipelineStoreFailedSolveNotPersisted pins the poisoned-chain
// rule for the error path: when a shape's chain ends on a failed solve
// the reset chain must not be written to the store, even though an
// earlier record of the shape succeeded.
func TestPipelineStoreFailedSolveNotPersisted(t *testing.T) {
	s := openTestStore(t)
	// Two good solves, then a sockets-transport executor whose worker
	// addresses refuse connections — it passes spec validation and fails
	// in the solve stage, poisoning the chain as its last act.
	in := storeLassoStream(2) +
		`{"id":"bad","workload":"lasso","spec":{"m":32,"lambda":0.3},"executor":{"kind":"sharded","shards":2,"transport":"sockets","addrs":["127.0.0.1:1","127.0.0.1:1"]}}` + "\n"

	var out bytes.Buffer
	stats, err := Run(context.Background(), strings.NewReader(in), &out, Options{Workers: 2, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	results := decodeResults(t, out.Bytes())
	if results[2].Error == "" {
		t.Fatalf("oversharded record did not fail: %+v", results[2])
	}
	if stats.StoreSaves != 0 {
		t.Fatalf("poisoned chain persisted: stats = %+v", stats)
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d keys after a poisoned-chain run, want 0", s.Len())
	}
}

// panicOp is a prox operator that panics on first evaluation — the
// direct way to drive solveOne's panic recovery with a graph whose
// shape still matches the chain's snapshot.
type panicOp struct{}

func (panicOp) Eval(x, n, rho []float64, d int) { panic("prox exploded") }
func (panicOp) Work(deg, d int) graph.Work      { return prox.Identity{}.Work(deg, d) }

// brokenProblem is a workload.Problem whose solve panics in the
// kernels.
type brokenProblem struct{ g *graph.Graph }

func (b brokenProblem) FactorGraph() *graph.Graph   { return b.g }
func (b brokenProblem) Reset()                      {}
func (b brokenProblem) Metrics() map[string]float64 { return nil }

// TestPipelineStorePanicResetsChain pins the poisoned-chain rule for
// the panic path: a panicked solve must reset the shape's in-memory
// warm chain (this was the bug — the error path reset it, the panic
// path did not) so the stale snapshot is neither reused nor persisted.
func TestPipelineStorePanicResetsChain(t *testing.T) {
	p := &pipeline{ctx: context.Background(), opts: Options{}.withDefaults(), shapes: map[string]*shapeState{}}

	// A previously successful chain for the shape...
	good := graph.New(1)
	good.AddNode(prox.Identity{}, 0)
	if err := good.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := p.shape("poison-key")
	st.warm.Capture(good)
	st.dirty = true
	st.iterations = 3

	// ...then its problem is swapped for a same-shape graph whose prox
	// evaluation panics, so the warm snapshot applies cleanly and the
	// panic fires inside the solve itself.
	bad := graph.New(1)
	bad.AddNode(panicOp{}, 0)
	if err := bad.Finalize(); err != nil {
		t.Fatal(err)
	}
	st.prob = brokenProblem{g: bad}
	res := p.solveOne(&task{seq: 0, adm: workload.Admission{Key: "poison-key"}})
	if !strings.Contains(res.Error, "solve panic") {
		t.Fatalf("result error = %q, want a solve panic", res.Error)
	}
	if st.warm.Captured() {
		t.Fatal("panicked solve left the warm chain captured")
	}
	if st.dirty {
		t.Fatal("panicked solve left the chain marked dirty for persistence")
	}
}

// TestPipelineStoreShapeMismatchRejected pins the stale-entry guard: a
// stored snapshot under the right key but the wrong shape must be
// rejected by WarmState.Apply, and the record solves cold with a miss
// — never a wrong answer.
func TestPipelineStoreShapeMismatchRejected(t *testing.T) {
	s := openTestStore(t)

	// Find the admission key the stream's records will use, then poison
	// the store with a snapshot of a different shape under that key.
	adm, err := workload.Parse("lasso", []byte(`{"m":32,"lambda":0.3}`))
	if err != nil {
		t.Fatal(err)
	}
	wrong := graph.New(1)
	for i := 0; i < 3; i++ {
		wrong.AddNode(prox.Identity{}, i)
	}
	if err := wrong.Finalize(); err != nil {
		t.Fatal(err)
	}
	var ws admm.WarmState
	ws.Capture(wrong)
	if err := s.Put(adm.Key, store.Snapshot{Warm: ws, Iterations: 1}); err != nil {
		t.Fatal(err)
	}

	var outCold, outSeeded bytes.Buffer
	if _, err := Run(context.Background(), strings.NewReader(storeLassoStream(2)), &outCold, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), strings.NewReader(storeLassoStream(2)), &outSeeded, Options{Workers: 1, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoreHits != 0 || stats.StoreMisses != 1 {
		t.Fatalf("store stats = %+v, want the mismatched snapshot counted as a miss", stats)
	}
	res := decodeResults(t, outSeeded.Bytes())
	if res[0].Warm {
		t.Fatal("record warm-started off a shape-mismatched snapshot")
	}
	// Identical results to a storeless run: the bad entry cost nothing
	// but the lookup.
	if !bytes.Equal(outCold.Bytes(), outSeeded.Bytes()) {
		t.Fatal("mismatched store entry changed solve output")
	}
}
