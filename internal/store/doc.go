// Package store is the persistent warm-start solution store: a
// crash-safe on-disk map from problem shape keys (the canonical spec
// serializations of internal/workload.Admission.Key) to the
// admm.WarmState snapshot a solve chain ended with.
//
// The bulk pipeline (internal/bulk) proved that same-shape solves
// warm-started off each other converge in a fraction of the cold
// iteration count — but its chains lived only inside one stream. This
// package extends the chains across streams, processes, and restarts:
// a pipeline seeds each shape's chain from the store on first sight and
// persists the chain's final state at stream end, so a restarted server
// (or a second CLI run over related traffic) starts where the last one
// finished instead of solving everything cold.
//
// # Design
//
// The store is an append-only log of checksummed records with an
// in-memory index over the newest generation of each key — the
// log-structured end of the LevelDB-style design the ROADMAP names,
// kept deliberately simple because the working set (one snapshot per
// distinct problem shape) is small and the access pattern is
// point-lookup only.
//
//   - Append-only writes: a Put never touches existing bytes, so a
//     crash cannot corrupt previously stored solutions.
//   - Checksummed records: each record carries a CRC32 of its payload;
//     reopen scans the log and truncates at the first torn or
//     corrupted record (a crash mid-append loses at most that append).
//   - Generations: each key's records carry a monotonically increasing
//     generation; the index (and compaction) keep only the newest.
//   - Size-capped compaction with LRU eviction: when the log outgrows
//     Options.MaxBytes it is rewritten keeping the newest generation
//     per key, evicting least-recently-used keys if that still does
//     not fit; the rewrite goes to a temp file renamed over the log,
//     so either the old or the new log survives a crash, never a mix.
//
// Corrupt or stale data can never produce a wrong answer downstream:
// records are re-verified on Get, and the consumer applies snapshots
// through admm.WarmState.Apply, whose shape guard rejects any snapshot
// that does not match the graph it is applied to — the failure mode is
// always "solve cold", not "solve wrong". See docs/store.md for the
// record format and the measured warm-vs-cold ladder.
package store
