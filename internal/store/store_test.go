package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/admm"
	"repro/internal/graph"
	"repro/internal/prox"
)

// testWarm builds a small captured WarmState with recognizable values:
// a finalized d=1 graph of n pass-through nodes with seeded random
// state, so snapshots of different seeds are distinguishable.
func testWarm(t testing.TB, n int, seed int64) admm.WarmState {
	t.Helper()
	g := graph.New(1)
	for i := 0; i < n; i++ {
		g.AddNode(prox.Identity{}, i)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	g.InitRandom(-1, 1, rand.New(rand.NewSource(seed)))
	var ws admm.WarmState
	ws.Capture(g)
	return ws
}

func logPath(dir string) string { return filepath.Join(dir, logName) }

// TestStorePutGetAcrossReopen pins the basic durability contract: put,
// close, reopen, get back an identical snapshot with its generation.
func TestStorePutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ws := testWarm(t, 4, 25)
	if err := s.Put("shape-a", Snapshot{Warm: ws, Iterations: 123}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("shape-a", Snapshot{Warm: ws, Iterations: 45}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok := s2.Get("shape-a")
	if !ok {
		t.Fatal("stored key missing after reopen")
	}
	if snap.Generation != 2 || snap.Iterations != 45 {
		t.Fatalf("got generation %d, iterations %d; want 2, 45", snap.Generation, snap.Iterations)
	}
	if len(snap.Warm.X) != len(ws.X) {
		t.Fatalf("warm X length %d, want %d", len(snap.Warm.X), len(ws.X))
	}
	for i := range ws.X {
		if snap.Warm.X[i] != ws.X[i] {
			t.Fatalf("warm X[%d] = %g, want %g", i, snap.Warm.X[i], ws.X[i])
		}
	}
	if _, ok := s2.Get("shape-b"); ok {
		t.Fatal("unknown key reported as hit")
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Keys != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 key, positive bytes", st)
	}
}

// TestStoreCrashRecoveryEveryOffset is the torn-tail battery: append
// three records, then truncate the log at every byte offset inside the
// final record and reopen. The index must rebuild from the intact
// prefix (two keys, correct snapshots) with no panic, and the torn
// bytes must be gone after the reopen so subsequent appends are clean.
func TestStoreCrashRecoveryEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warms := map[string]admm.WarmState{
		"k1": testWarm(t, 3, 1),
		"k2": testWarm(t, 5, 2),
		"k3": testWarm(t, 4, 3),
	}
	var offsets []int64
	for _, k := range []string{"k1", "k2", "k3"} {
		offsets = append(offsets, s.Stats().Bytes)
		if err := s.Put(k, Snapshot{Warm: warms[k], Iterations: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := offsets[2]

	for cut := lastStart; cut < int64(len(full)); cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(logPath(cutDir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sc, err := Open(Options{Dir: cutDir})
		if err != nil {
			t.Fatalf("cut at %d: reopen failed: %v", cut, err)
		}
		if got := sc.Len(); got != 2 {
			t.Fatalf("cut at %d: index has %d keys, want 2 (the intact prefix)", cut, got)
		}
		for _, k := range []string{"k1", "k2"} {
			snap, ok := sc.Get(k)
			if !ok {
				t.Fatalf("cut at %d: intact key %s missing", cut, k)
			}
			want := warms[k]
			for i := range want.Z {
				if snap.Warm.Z[i] != want.Z[i] {
					t.Fatalf("cut at %d: %s Z[%d] = %g, want %g", cut, k, i, snap.Warm.Z[i], want.Z[i])
				}
			}
		}
		if _, ok := sc.Get("k3"); ok {
			t.Fatalf("cut at %d: torn record served", cut)
		}
		// The truncated tail must be physically gone: a fresh append
		// followed by reopen must index it.
		if err := sc.Put("k4", Snapshot{Warm: warms["k1"], Iterations: 9}); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		sc2, err := Open(Options{Dir: cutDir})
		if err != nil {
			t.Fatalf("cut at %d: second reopen: %v", cut, err)
		}
		if _, ok := sc2.Get("k4"); !ok {
			t.Fatalf("cut at %d: append after recovery lost on reopen", cut)
		}
		sc2.Close()
	}
}

// TestStoreCorruptMiddleRecord flips a payload byte of the middle
// record: reopen must keep only the prefix before it (truncation back
// to the last intact record — corruption is treated as a torn tail).
func TestStoreCorruptMiddleRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ws := testWarm(t, 3, 5)
	var off2 int64
	for i, k := range []string{"k1", "k2", "k3"} {
		if i == 1 {
			off2 = s.Stats().Bytes
		}
		if err := s.Put(k, Snapshot{Warm: ws, Iterations: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	raw, err := os.ReadFile(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[off2+headerSize+5] ^= 0xff
	if err := os.WriteFile(logPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("index has %d keys after mid-log corruption, want 1", s2.Len())
	}
	if _, ok := s2.Get("k1"); !ok {
		t.Fatal("intact first record missing")
	}
}

// TestStoreCompactionAndLRU drives the log past its size cap and pins
// the compaction contract: newest generation per key survives, the
// least-recently-used keys are evicted first, the log shrinks under the
// cap, and the surviving records are intact across a reopen.
func TestStoreCompactionAndLRU(t *testing.T) {
	dir := t.TempDir()
	ws := testWarm(t, 6, 75)
	rec, err := encodeRecord("key-0", Snapshot{Warm: ws})
	if err != nil {
		t.Fatal(err)
	}
	// Cap sized for about 4 records, so 8 distinct keys must evict.
	s, err := Open(Options{Dir: dir, MaxBytes: int64(4*len(rec) + len(rec)/2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), Snapshot{Warm: ws, Iterations: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 || st.Evictions == 0 {
		t.Fatalf("stats = %+v, want compactions and evictions", st)
	}
	if st.Bytes > 4*int64(len(rec))+int64(len(rec))/2 {
		t.Fatalf("log is %d bytes after compaction, cap was %d", st.Bytes, 4*len(rec)+len(rec)/2)
	}
	// The most recently written keys survive; the earliest are gone.
	if _, ok := s.Get("key-7"); !ok {
		t.Fatal("most recent key evicted")
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("least recently used key survived an over-cap compaction")
	}
	s.Close()

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok := s2.Get("key-7")
	if !ok {
		t.Fatal("surviving key lost across reopen")
	}
	if snap.Iterations != 7 {
		t.Fatalf("surviving key iterations = %d, want 7", snap.Iterations)
	}
}

// TestStoreCompactionKeepsNewestGeneration re-puts one key many times
// past the cap: compaction must dedup to the newest generation and the
// generation counter must keep rising across it.
func TestStoreCompactionKeepsNewestGeneration(t *testing.T) {
	dir := t.TempDir()
	ws := testWarm(t, 6, 15)
	rec, err := encodeRecord("k", Snapshot{Warm: ws})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir, MaxBytes: int64(3 * len(rec))})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put("k", Snapshot{Warm: ws, Iterations: i}); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := s.Get("k")
	if !ok {
		t.Fatal("key missing after repeated puts")
	}
	if snap.Generation != 10 || snap.Iterations != 9 {
		t.Fatalf("got generation %d iterations %d, want 10 and 9", snap.Generation, snap.Iterations)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("single-key compaction evicted %d keys", st.Evictions)
	}
}
