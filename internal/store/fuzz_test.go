package store

import (
	"bytes"
	"testing"
)

// FuzzStoreRecordDecode fuzzes the record payload decoder: it must
// never panic on arbitrary bytes, and any payload it accepts must
// re-encode (through the framing encoder) into a record whose payload
// decodes back to the same key, generation, iteration count, and warm
// shape — the round-trip property the reopen scan and compaction rely
// on.
func FuzzStoreRecordDecode(f *testing.F) {
	ws := testWarm(f, 4, 7)
	good, err := encodeRecord("lasso/m=32,lambda=0.3", Snapshot{Warm: ws, Iterations: 42, Generation: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good[headerSize:])
	f.Add([]byte{})
	f.Add([]byte{recordVersion})
	f.Add([]byte{recordVersion, 1, 0, 'k'})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		key, snap, err := decodePayload(payload)
		if err != nil {
			return
		}
		rec, err := encodeRecord(key, snap)
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
		key2, snap2, err := decodePayload(rec[headerSize:])
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if key2 != key || snap2.Generation != snap.Generation || snap2.Iterations != snap.Iterations {
			t.Fatalf("round trip changed identity: (%q,%d,%d) -> (%q,%d,%d)",
				key, snap.Generation, snap.Iterations, key2, snap2.Generation, snap2.Iterations)
		}
		e1, v1, d1 := snap.Warm.Shape()
		e2, v2, d2 := snap2.Warm.Shape()
		if e1 != e2 || v1 != v2 || d1 != d2 {
			t.Fatalf("round trip changed warm shape: (%d,%d,%d) -> (%d,%d,%d)", e1, v1, d1, e2, v2, d2)
		}
		for i := range snap.Warm.Z {
			b1, b2 := snap.Warm.Z[i], snap2.Warm.Z[i]
			// Compare bit patterns so NaN payloads round-trip too.
			if b1 != b2 && !(b1 != b1 && b2 != b2) {
				t.Fatalf("round trip changed Z[%d]: %g -> %g", i, b1, b2)
			}
		}
	})
}
