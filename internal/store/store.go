package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Options tunes an on-disk store.
type Options struct {
	// Dir is the store directory (created if missing). The log lives at
	// Dir/solutions.log.
	Dir string
	// MaxBytes caps the log size (default 256 MiB). When an append
	// pushes the log past the cap the store compacts: old generations
	// are dropped, and if the newest generation of every key still does
	// not fit, least-recently-used keys are evicted until it does.
	MaxBytes int64
}

// Stats is a snapshot of store effectiveness counters. Hits/Misses
// count Get outcomes since the store was opened; Evictions counts keys
// dropped by size-capped compaction; Bytes is the current log size.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Puts        uint64
	Evictions   uint64
	Compactions uint64
	Keys        int
	Bytes       int64
}

// entry is the in-memory index record for one key: where the newest
// generation's payload lives in the log, plus the metadata needed to
// serve Stats and drive LRU eviction without touching disk.
type entry struct {
	payloadOff int64
	payloadLen int
	crc        uint32
	generation uint64
	iterations int
	recordLen  int64 // header + payload, for live-size accounting
	lastUse    uint64
}

// Store is a crash-safe persistent solution store: an append-only log
// of checksummed (shape key -> warm-start snapshot) records with an
// in-memory index over the newest generation of each key.
//
// Crash safety is by construction rather than by fsync-per-write: every
// record is checksummed, so a torn tail (a crash mid-append) is
// detected on reopen and truncated away, losing at most the records
// after the last intact one. Compaction writes a fresh log to a
// temporary file and renames it over the old one, so a crash
// mid-compaction leaves either the old log or the new one, never a mix.
//
// All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	live  int64 // bytes occupied by the newest generation of each key
	index map[string]*entry
	tick  uint64
	max   int64
	stats Stats
}

const logName = "solutions.log"

// Open opens (or creates) the store in opts.Dir, scanning the log to
// rebuild the index. A torn or corrupted tail is truncated back to the
// last intact record; a leftover temporary file from an interrupted
// compaction is removed.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no directory given")
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(opts.Dir, logName)
	os.Remove(path + ".tmp") // interrupted compaction leftovers
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, index: map[string]*entry{}, max: opts.MaxBytes}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan replays the log sequentially, indexing the newest generation of
// each key and truncating at the first torn or corrupted record.
func (s *Store) scan() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	total := fi.Size()
	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for off+headerSize <= total {
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: read log header: %w", err)
		}
		payloadLen, crc, err := parseHeader(hdr)
		if err != nil {
			break // corrupted record: keep the intact prefix
		}
		if off+headerSize+int64(payloadLen) > total {
			break // torn tail: the payload never fully landed
		}
		if cap(payload) < payloadLen {
			payload = make([]byte, payloadLen)
		}
		payload = payload[:payloadLen]
		if _, err := s.f.ReadAt(payload, off+headerSize); err != nil {
			return fmt.Errorf("store: read log payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		key, snap, err := decodePayload(payload)
		if err != nil {
			break
		}
		recLen := int64(headerSize + payloadLen)
		if old, ok := s.index[key]; ok {
			s.live -= old.recordLen
		}
		s.tick++
		s.index[key] = &entry{
			payloadOff: off + headerSize,
			payloadLen: payloadLen,
			crc:        crc,
			generation: snap.Generation,
			iterations: snap.Iterations,
			recordLen:  recLen,
			lastUse:    s.tick,
		}
		s.live += recLen
		off += recLen
	}
	if off < total {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	s.size = off
	return nil
}

// Get returns the newest stored snapshot for key. A record that fails
// its checksum or decode on the way back (disk corruption after the
// open-time scan) is dropped from the index and reported as a miss —
// the store never returns a snapshot it cannot fully verify.
func (s *Store) Get(key string) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return Snapshot{}, false
	}
	payload := make([]byte, e.payloadLen)
	if _, err := s.f.ReadAt(payload, e.payloadOff); err != nil {
		s.drop(key, e)
		return Snapshot{}, false
	}
	if crc32.ChecksumIEEE(payload) != e.crc {
		s.drop(key, e)
		return Snapshot{}, false
	}
	gotKey, snap, err := decodePayload(payload)
	if err != nil || gotKey != key {
		s.drop(key, e)
		return Snapshot{}, false
	}
	s.tick++
	e.lastUse = s.tick
	s.stats.Hits++
	return snap, true
}

// drop removes a key whose stored record turned out to be unreadable.
func (s *Store) drop(key string, e *entry) {
	s.live -= e.recordLen
	delete(s.index, key)
	s.stats.Misses++
}

// Put appends a new generation for key. The snapshot's Generation
// field is assigned by the store (previous generation + 1). When the
// append pushes the log past the size cap, the store compacts in place.
func (s *Store) Put(key string, snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.Generation = 1
	if old, ok := s.index[key]; ok {
		snap.Generation = old.generation + 1
	}
	rec, err := encodeRecord(key, snap)
	if err != nil {
		return err
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.live -= old.recordLen
	}
	s.tick++
	s.index[key] = &entry{
		payloadOff: s.size + headerSize,
		payloadLen: len(rec) - headerSize,
		crc:        crc32.ChecksumIEEE(rec[headerSize:]),
		generation: snap.Generation,
		iterations: snap.Iterations,
		recordLen:  int64(len(rec)),
		lastUse:    s.tick,
	}
	s.live += int64(len(rec))
	s.size += int64(len(rec))
	s.stats.Puts++
	if s.size > s.max {
		return s.compact()
	}
	return nil
}

// compact rewrites the log keeping only the newest generation of each
// key, evicting least-recently-used keys while the survivors still
// exceed the size cap (the most recently used key always survives).
// The new log is written to a temporary file, synced, and renamed over
// the old one, so a crash at any point leaves one intact log.
func (s *Store) compact() error {
	type keyed struct {
		key string
		e   *entry
	}
	keep := make([]keyed, 0, len(s.index))
	for k, e := range s.index {
		keep = append(keep, keyed{k, e})
	}
	// Most recently used first: eviction trims from the tail.
	sort.Slice(keep, func(i, j int) bool { return keep[i].e.lastUse > keep[j].e.lastUse })
	var kept int64
	cut := len(keep)
	for i, ke := range keep {
		if i > 0 && kept+ke.e.recordLen > s.max {
			cut = i
			break
		}
		kept += ke.e.recordLen
	}
	s.stats.Evictions += uint64(len(keep) - cut)
	keep = keep[:cut]
	// Rewrite in log order so relative append order (and therefore a
	// future scan's tick order) is preserved.
	sort.Slice(keep, func(i, j int) bool { return keep[i].e.payloadOff < keep[j].e.payloadOff })

	tmpPath := s.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	var off int64
	newIndex := make(map[string]*entry, len(keep))
	buf := make([]byte, 0, 64<<10)
	for _, ke := range keep {
		rec := buf
		if cap(rec) < int(ke.e.recordLen) {
			rec = make([]byte, ke.e.recordLen)
		}
		rec = rec[:ke.e.recordLen]
		if _, err := s.f.ReadAt(rec, ke.e.payloadOff-headerSize); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact read: %w", err)
		}
		if _, err := tmp.WriteAt(rec, off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		ne := *ke.e
		ne.payloadOff = off + headerSize
		newIndex[ke.key] = &ne
		off += ke.e.recordLen
		buf = rec
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact rename: %w", err)
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.live = off
	s.stats.Compactions++
	return nil
}

// Len reports the number of keys currently indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Keys = len(s.index)
	st.Bytes = s.size
	return st
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the log. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && err != io.EOF {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}
