package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/admm"
)

// On-disk record framing. Every record is
//
//	| magic u32 | payloadLen u32 | crc32(payload) u32 | payload |
//
// (all little-endian), and the payload is
//
//	| version u8 | keyLen u16 | key | generation u64 | iterations u32 |
//	| warmLen u32 | warm state blob (admm.WarmState.MarshalBinary) |
//
// The CRC is over the payload only: a torn header is caught by the
// magic/length checks, a torn payload by the checksum, and in either
// case the log is truncated back to the last intact record on reopen.
const (
	recordMagic   = 0x50535631 // "PSV1"
	headerSize    = 12
	recordVersion = 1
	// maxPayloadBytes bounds a single record so a corrupted length
	// prefix cannot demand a giant allocation during the reopen scan.
	// The serving layer's workload size caps keep real snapshots far
	// below this.
	maxPayloadBytes = 1 << 30
)

// Snapshot is one stored solution: the warm-start state a solve chain
// ended with, the iteration count of the solve that produced it, and
// the per-key generation the store assigned when it was written.
type Snapshot struct {
	Warm       admm.WarmState
	Iterations int
	Generation uint64
}

// encodeRecord renders a full framed record (header + payload).
func encodeRecord(key string, snap Snapshot) ([]byte, error) {
	if key == "" {
		return nil, fmt.Errorf("store: empty key")
	}
	if len(key) > 0xffff {
		return nil, fmt.Errorf("store: key is %d bytes, max %d", len(key), 0xffff)
	}
	if snap.Iterations < 0 {
		return nil, fmt.Errorf("store: negative iteration count %d", snap.Iterations)
	}
	warm, err := snap.Warm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	payloadLen := 1 + 2 + len(key) + 8 + 4 + 4 + len(warm)
	if payloadLen > maxPayloadBytes {
		return nil, fmt.Errorf("store: record payload is %d bytes, max %d", payloadLen, maxPayloadBytes)
	}
	buf := make([]byte, 0, headerSize+payloadLen)
	buf = binary.LittleEndian.AppendUint32(buf, recordMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = buf[:headerSize] // crc patched below, once the payload exists
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, snap.Generation)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(snap.Iterations))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(warm)))
	buf = append(buf, warm...)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf[headerSize:]))
	return buf, nil
}

// decodePayload parses a checksummed payload back into its key and
// snapshot. It never panics on malformed input; every length is checked
// before it is trusted.
func decodePayload(payload []byte) (key string, snap Snapshot, err error) {
	if len(payload) < 1+2 {
		return "", Snapshot{}, fmt.Errorf("store: payload too short (%d bytes)", len(payload))
	}
	if payload[0] != recordVersion {
		return "", Snapshot{}, fmt.Errorf("store: record version %d, want %d", payload[0], recordVersion)
	}
	keyLen := int(binary.LittleEndian.Uint16(payload[1:]))
	rest := payload[3:]
	if keyLen == 0 || len(rest) < keyLen+8+4+4 {
		return "", Snapshot{}, fmt.Errorf("store: payload truncated inside key/header")
	}
	key = string(rest[:keyLen])
	rest = rest[keyLen:]
	snap.Generation = binary.LittleEndian.Uint64(rest)
	snap.Iterations = int(binary.LittleEndian.Uint32(rest[8:]))
	warmLen := int(binary.LittleEndian.Uint32(rest[12:]))
	rest = rest[16:]
	if warmLen != len(rest) {
		return "", Snapshot{}, fmt.Errorf("store: warm blob length %d, payload carries %d", warmLen, len(rest))
	}
	if err := snap.Warm.UnmarshalBinary(rest); err != nil {
		return "", Snapshot{}, err
	}
	return key, snap, nil
}

// parseHeader validates a record header and returns the payload length
// and expected checksum.
func parseHeader(hdr []byte) (payloadLen int, crc uint32, err error) {
	if len(hdr) < headerSize {
		return 0, 0, fmt.Errorf("store: header truncated (%d bytes)", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr) != recordMagic {
		return 0, 0, fmt.Errorf("store: bad record magic %#x", binary.LittleEndian.Uint32(hdr))
	}
	payloadLen = int(binary.LittleEndian.Uint32(hdr[4:]))
	if payloadLen <= 0 || payloadLen > maxPayloadBytes {
		return 0, 0, fmt.Errorf("store: record payload length %d out of range", payloadLen)
	}
	return payloadLen, binary.LittleEndian.Uint32(hdr[8:]), nil
}
