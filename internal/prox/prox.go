// Package prox provides the generic proximal-operator library used to
// assemble factor-graphs.
//
// Every operator implements graph.Op: given the incoming messages n (one
// d-double block per incident edge) and the per-edge penalties rho, Eval
// writes the minimizer of f(s) + sum_k rho_k/2 ||s_k - n_k||^2 into x.
//
// Padding convention. The factor-graph fixes d doubles per edge (the
// paper's number_of_dims_per_edge); a node whose natural dimension is
// smaller (a scalar radius or slack on a d=2 graph, say) must treat the
// trailing components as absent. The exact proximal map of a function
// that does not depend on a component is the identity on that component,
// so operators copy n into x there. The helpers in this file implement
// that convention once.
package prox

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// copyPad copies the identity part of each edge block: components
// nd..d-1 of every block are set to the incoming message. Operators call
// this first and then overwrite the live components.
func copyPad(x, n []float64, deg, d, nd int) {
	if nd >= d {
		return
	}
	for k := 0; k < deg; k++ {
		off := k * d
		copy(x[off+nd:off+d], n[off+nd:off+d])
	}
}

// Identity is the proximal operator of f = 0: x = n. It is useful for
// padding experiments and as the no-opinion operator in tests.
type Identity struct{}

// Eval implements graph.Op.
func (Identity) Eval(x, n, rho []float64, d int) { copy(x, n) }

// Work implements graph.Op.
func (Identity) Work(deg, d int) graph.Work {
	return graph.Work{Flops: 0, MemWords: float64(2 * deg * d)}
}

// Box is the projection onto the box [Lo, Hi]^nd, applied independently
// to each of the node's edge blocks; f is the indicator of the box.
// Dim is the natural dimension (components beyond it pass through).
type Box struct {
	Lo, Hi float64
	Dim    int
}

// Eval implements graph.Op.
func (b Box) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := b.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		off := k * d
		for i := 0; i < nd; i++ {
			x[off+i] = linalg.Clamp(n[off+i], b.Lo, b.Hi)
		}
	}
}

// Work implements graph.Op.
func (b Box) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(2 * deg * d), MemWords: float64(2 * deg * d), Branchy: 0.5, Serial: 0.1}
}

// NonNeg projects every live component onto [0, inf).
type NonNeg struct{ Dim int }

// Eval implements graph.Op.
func (p NonNeg) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		off := k * d
		for i := 0; i < nd; i++ {
			if v := n[off+i]; v > 0 {
				x[off+i] = v
			} else {
				x[off+i] = 0
			}
		}
	}
}

// Work implements graph.Op.
func (p NonNeg) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(deg * d), MemWords: float64(2 * deg * d), Branchy: 0.5, Serial: 0.1}
}

// L1 is the proximal operator of Lambda * ||s||_1 (soft thresholding),
// applied per component with threshold Lambda/rho.
type L1 struct {
	Lambda float64
	Dim    int
}

// Eval implements graph.Op.
func (p L1) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		off := k * d
		t := p.Lambda / rho[k]
		for i := 0; i < nd; i++ {
			x[off+i] = linalg.SoftThreshold(n[off+i], t)
		}
	}
}

// Work implements graph.Op.
func (p L1) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(3 * deg * d), MemWords: float64(2 * deg * d), Branchy: 0.6, Serial: 0.1}
}

// SemiLasso is the prox of Lambda * sum_i s_i restricted to s >= 0 (the
// paper's "minimal error" SVM operator, Appendix C.1): a one-sided soft
// threshold, x_i = max(n_i - Lambda/rho, 0).
type SemiLasso struct {
	Lambda float64
	Dim    int
}

// Eval implements graph.Op.
func (p SemiLasso) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		off := k * d
		t := p.Lambda / rho[k]
		for i := 0; i < nd; i++ {
			if v := n[off+i] - t; v > 0 {
				x[off+i] = v
			} else {
				x[off+i] = 0
			}
		}
	}
}

// Work implements graph.Op.
func (p SemiLasso) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(2 * deg * d), MemWords: float64(2 * deg * d), Branchy: 0.5, Serial: 0.1}
}

// SquaredNorm is the prox of (C/2)*||s||^2 on a single-edge node:
// x = rho*n / (rho + C). C may be negative (a concave reward, as in the
// packing radius operator) provided rho + C > 0 at run time; Eval panics
// otherwise, since the subproblem is then unbounded.
type SquaredNorm struct {
	C   float64
	Dim int
}

// Eval implements graph.Op.
func (p SquaredNorm) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		r := rho[k]
		if r+p.C <= 0 {
			panic(fmt.Sprintf("prox: SquaredNorm unbounded subproblem (rho=%g, C=%g)", r, p.C))
		}
		s := r / (r + p.C)
		off := k * d
		for i := 0; i < nd; i++ {
			x[off+i] = s * n[off+i]
		}
	}
}

// Work implements graph.Op.
func (p SquaredNorm) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(2*deg*d + 3*deg), MemWords: float64(2 * deg * d), Serial: 0.2}
}

// Consensus is the prox of the indicator of {s_1 = s_2 = ... = s_deg}
// (the paper's "equality" operator, Appendix C.4, generalized to any
// degree): every block becomes the rho-weighted average of the incoming
// blocks.
type Consensus struct{ Dim int }

// Eval implements graph.Op.
func (p Consensus) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	var rhoSum float64
	for _, r := range rho {
		rhoSum += r
	}
	for i := 0; i < nd; i++ {
		var s float64
		for k := 0; k < deg; k++ {
			s += rho[k] * n[k*d+i]
		}
		s /= rhoSum
		for k := 0; k < deg; k++ {
			x[k*d+i] = s
		}
	}
}

// Work implements graph.Op.
func (p Consensus) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(3 * deg * d), MemWords: float64(2 * deg * d)}
}

// L2Ball projects each edge block onto {||s|| <= R}.
type L2Ball struct {
	R   float64
	Dim int
}

// Eval implements graph.Op.
func (p L2Ball) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, deg, d, nd)
	for k := 0; k < deg; k++ {
		off := k * d
		blk := n[off : off+nd]
		nrm := linalg.Norm2(blk)
		if nrm <= p.R {
			copy(x[off:off+nd], blk)
			continue
		}
		s := p.R / nrm
		for i := 0; i < nd; i++ {
			x[off+i] = s * blk[i]
		}
	}
}

// Work implements graph.Op.
func (p L2Ball) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(4 * deg * d), MemWords: float64(2 * deg * d), Branchy: 0.4, Serial: 0.5}
}

// AffineEquality is the indicator of {s : C s = rhs} over the node's
// concatenated live components. The constraint matrix columns index the
// concatenation edge-block-by-edge-block, nd live components per block.
// The projection is rho-weighted (each edge's components share its rho),
// matching the exact prox. The Gram factorization is recomputed per Eval
// only when rho changed since the last call; the common constant-rho path
// hits a cached factorization.
//
// This operator backs the MPC linearized-dynamics prox (Appendix B) and
// the initial-condition clamp.
type AffineEquality struct {
	C   *linalg.Mat
	RHS []float64
	Dim int // live components per edge block

	proj     *linalg.AffineProjector
	cachedW  []float64
	deg      int
	vbuf     []float64 // scratch: concatenated live components
	rhoExp   []float64 // scratch: per-component weights
	lastRho  []float64
	scratchM []float64
}

// NewAffineEquality builds the operator; c must have nd*deg columns where
// deg is the degree of the node it will be attached to.
func NewAffineEquality(c *linalg.Mat, rhs []float64, nd int) (*AffineEquality, error) {
	if nd <= 0 {
		return nil, fmt.Errorf("prox: AffineEquality needs positive dim, got %d", nd)
	}
	if c.Cols%nd != 0 {
		return nil, fmt.Errorf("prox: constraint matrix has %d cols, not a multiple of dim %d", c.Cols, nd)
	}
	proj, err := linalg.NewAffineProjector(c, rhs)
	if err != nil {
		return nil, err
	}
	return &AffineEquality{
		C: c, RHS: rhs, Dim: nd,
		proj:     proj,
		deg:      c.Cols / nd,
		vbuf:     make([]float64, c.Cols),
		rhoExp:   make([]float64, c.Cols),
		lastRho:  make([]float64, c.Cols/nd),
		scratchM: make([]float64, c.Rows),
	}, nil
}

// Eval implements graph.Op. It is NOT safe for concurrent use on the same
// operator instance (it owns scratch buffers); attach one instance per
// function node, which is how every builder in this repository uses it.
func (p *AffineEquality) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	if deg != p.deg {
		panic(fmt.Sprintf("prox: AffineEquality built for degree %d, attached to degree %d", p.deg, deg))
	}
	nd := p.Dim
	if nd > d {
		panic(fmt.Sprintf("prox: AffineEquality dim %d exceeds graph dims %d", nd, d))
	}
	copyPad(x, n, deg, d, nd)
	// Gather live components.
	for k := 0; k < deg; k++ {
		copy(p.vbuf[k*nd:(k+1)*nd], n[k*d:k*d+nd])
	}
	// Refresh the factorization only when rho changed.
	changed := p.proj == nil
	for k, r := range rho {
		if p.lastRho[k] != r {
			changed = true
			break
		}
	}
	if changed {
		copy(p.lastRho, rho)
		for k := 0; k < deg; k++ {
			for i := 0; i < nd; i++ {
				p.rhoExp[k*nd+i] = rho[k]
			}
		}
		if err := p.proj.Precompute(p.rhoExp); err != nil {
			panic(fmt.Sprintf("prox: AffineEquality projection: %v", err))
		}
	}
	p.proj.Project(p.vbuf, p.scratchM)
	for k := 0; k < deg; k++ {
		copy(x[k*d:k*d+nd], p.vbuf[k*nd:(k+1)*nd])
	}
}

// Work implements graph.Op.
func (p *AffineEquality) Work(deg, d int) graph.Work {
	m := float64(p.C.Rows)
	n := float64(p.C.Cols)
	// Charged as a solve per call (gram formation, factorization,
	// substitutions, rank-m update) — the cost profile of the paper's C
	// implementation, which refactors inside the PO; our cached fast
	// path is an implementation optimization the cost model deliberately
	// does not credit, so that simulated timings reflect the paper's.
	return graph.Work{
		Flops:    n*m*(2+m) + m*m*m,
		MemWords: float64(2*deg*d) + m*n + m*m,
		Branchy:  0.2,
		Serial:   0.9,
	}
}

// Halfspace is the indicator of {s : dot(A, s) >= B} over the node's
// concatenated live components (A has nd*deg entries). The projection is
// rho-weighted exactly.
type Halfspace struct {
	A   []float64
	B   float64
	Dim int
}

// Eval implements graph.Op.
func (p Halfspace) Eval(x, n, rho []float64, d int) {
	deg := len(rho)
	nd := p.Dim
	if nd > d {
		nd = d
	}
	if len(p.A) != deg*nd {
		panic(fmt.Sprintf("prox: Halfspace normal has %d entries, node supplies %d", len(p.A), deg*nd))
	}
	copyPad(x, n, deg, d, nd)
	// g(n) = dot(A, n_live) - B; if >= 0 feasible, x = n.
	var g float64
	for k := 0; k < deg; k++ {
		for i := 0; i < nd; i++ {
			g += p.A[k*nd+i] * n[k*d+i]
		}
	}
	g -= p.B
	if g >= 0 {
		for k := 0; k < deg; k++ {
			copy(x[k*d:k*d+nd], n[k*d:k*d+nd])
		}
		return
	}
	// Weighted projection: x = n - g * W a / (a^T W a), W = diag(1/rho).
	var den float64
	for k := 0; k < deg; k++ {
		for i := 0; i < nd; i++ {
			a := p.A[k*nd+i]
			den += a * a / rho[k]
		}
	}
	if den == 0 {
		for k := 0; k < deg; k++ {
			copy(x[k*d:k*d+nd], n[k*d:k*d+nd])
		}
		return
	}
	lam := g / den
	for k := 0; k < deg; k++ {
		for i := 0; i < nd; i++ {
			x[k*d+i] = n[k*d+i] - lam*p.A[k*nd+i]/rho[k]
		}
	}
}

// Work implements graph.Op.
func (p Halfspace) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(6 * deg * d), MemWords: float64(3 * deg * d), Branchy: 0.5, Serial: 0.5}
}

// Quadratic is the prox of f(s) = 1/2 s^T Q s + q^T s on a single-edge
// node over nd live components: x = (Q + rho I)^{-1} (rho n - q).
// Q must be symmetric positive semidefinite. The factorization is cached
// per rho value.
type Quadratic struct {
	Q   *linalg.Mat
	Lin []float64 // q, length nd (nil means zero)
	Dim int

	cachedRho float64
	chol      *linalg.Cholesky
	buf       []float64
}

// NewQuadratic validates shapes and returns the operator.
func NewQuadratic(q *linalg.Mat, lin []float64) (*Quadratic, error) {
	if q.Rows != q.Cols {
		return nil, fmt.Errorf("prox: Quadratic needs square Q, got %dx%d", q.Rows, q.Cols)
	}
	if lin != nil && len(lin) != q.Rows {
		return nil, fmt.Errorf("prox: Quadratic linear term length %d != %d", len(lin), q.Rows)
	}
	return &Quadratic{Q: q, Lin: lin, Dim: q.Rows, buf: make([]float64, q.Rows)}, nil
}

// Eval implements graph.Op. Like AffineEquality, one instance must not be
// shared across function nodes evaluated concurrently.
func (p *Quadratic) Eval(x, n, rho []float64, d int) {
	if len(rho) != 1 {
		panic("prox: Quadratic attaches to single-edge nodes")
	}
	nd := p.Dim
	if nd > d {
		panic(fmt.Sprintf("prox: Quadratic dim %d exceeds graph dims %d", nd, d))
	}
	copyPad(x, n, 1, d, nd)
	r := rho[0]
	if p.chol == nil || p.cachedRho != r {
		a := p.Q.Clone()
		for i := 0; i < nd; i++ {
			a.Data[i*nd+i] += r
		}
		ch, err := linalg.NewCholesky(a)
		if err != nil {
			panic(fmt.Sprintf("prox: Quadratic Q + rho I not PD: %v", err))
		}
		p.chol, p.cachedRho = ch, r
	}
	for i := 0; i < nd; i++ {
		p.buf[i] = r * n[i]
		if p.Lin != nil {
			p.buf[i] -= p.Lin[i]
		}
	}
	p.chol.Solve(p.buf)
	copy(x[:nd], p.buf)
}

// Work implements graph.Op.
func (p *Quadratic) Work(deg, d int) graph.Work {
	nd := float64(p.Dim)
	return graph.Work{Flops: 2*nd*nd + 4*nd, MemWords: float64(2*d) + nd*nd, Serial: 0.7}
}

// DiagQuadratic is the prox of f(s) = 1/2 sum_i w_i s_i^2 on a
// single-edge node: x_i = rho n_i / (rho + w_i). It is the fast path the
// MPC cost operator uses for diagonal Q and R (paper Appendix B).
type DiagQuadratic struct {
	W   []float64 // diagonal weights, length = live dim
	Dim int
}

// Eval implements graph.Op.
func (p DiagQuadratic) Eval(x, n, rho []float64, d int) {
	if len(rho) != 1 {
		panic("prox: DiagQuadratic attaches to single-edge nodes")
	}
	nd := p.Dim
	if nd > d {
		nd = d
	}
	copyPad(x, n, 1, d, nd)
	r := rho[0]
	for i := 0; i < nd; i++ {
		x[i] = r * n[i] / (r + p.W[i])
	}
}

// Work implements graph.Op.
func (p DiagQuadratic) Work(deg, d int) graph.Work {
	return graph.Work{Flops: float64(3 * p.Dim), MemWords: float64(2*d + p.Dim), Serial: 0.3}
}

// Clamp is the indicator of {s = Value} on a single-edge node's live
// components: x = Value regardless of n (an infinitely confident prior,
// used for the MPC initial condition q(0) = q0).
type Clamp struct {
	Value []float64
}

// Eval implements graph.Op.
func (p Clamp) Eval(x, n, rho []float64, d int) {
	if len(rho) != 1 {
		panic("prox: Clamp attaches to single-edge nodes")
	}
	nd := len(p.Value)
	if nd > d {
		nd = d
	}
	copyPad(x, n, 1, d, nd)
	copy(x[:nd], p.Value[:nd])
}

// Work implements graph.Op.
func (p Clamp) Work(deg, d int) graph.Work {
	return graph.Work{Flops: 0, MemWords: float64(2 * d)}
}
