package prox

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// proxObjective evaluates f(s) + sum_k rho_k/2 ||s_k - n_k||^2 restricted
// to the live components (nd per block).
func proxObjective(f func(s []float64) float64, s, n, rho []float64, d, nd int) float64 {
	deg := len(rho)
	live := make([]float64, 0, deg*nd)
	val := 0.0
	for k := 0; k < deg; k++ {
		for i := 0; i < nd; i++ {
			v := s[k*d+i]
			live = append(live, v)
			dv := v - n[k*d+i]
			val += rho[k] / 2 * dv * dv
		}
	}
	return val + f(live)
}

// checkProx verifies that op.Eval produces a point no worse than random
// feasible perturbations of itself (a first-order optimality smoke test),
// and that padded components pass through unchanged.
func checkProx(t *testing.T, op graph.Op, f func(live []float64) float64,
	feasible func(live []float64) bool, deg, d, nd int, rng *rand.Rand) {
	t.Helper()
	n := make([]float64, deg*d)
	for i := range n {
		n[i] = rng.NormFloat64() * 2
	}
	rho := make([]float64, deg)
	for k := range rho {
		rho[k] = 0.5 + rng.Float64()*2
	}
	x := make([]float64, deg*d)
	op.Eval(x, n, rho, d)

	// Padding passes through.
	for k := 0; k < deg; k++ {
		for i := nd; i < d; i++ {
			if x[k*d+i] != n[k*d+i] {
				t.Fatalf("pad component (%d,%d) = %g, want %g", k, i, x[k*d+i], n[k*d+i])
			}
		}
	}
	live := make([]float64, 0, deg*nd)
	for k := 0; k < deg; k++ {
		live = append(live, x[k*d:k*d+nd]...)
	}
	if feasible != nil && !feasible(live) {
		t.Fatalf("prox output infeasible: %v", live)
	}
	fx := proxObjective(f, x, n, rho, d, nd)
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		t.Fatalf("objective at prox point not finite: %g", fx)
	}
	// Compare against random feasible perturbations.
	pert := make([]float64, deg*d)
	for trial := 0; trial < 300; trial++ {
		copy(pert, x)
		for k := 0; k < deg; k++ {
			for i := 0; i < nd; i++ {
				pert[k*d+i] += rng.NormFloat64() * 0.05
			}
		}
		pl := make([]float64, 0, deg*nd)
		for k := 0; k < deg; k++ {
			pl = append(pl, pert[k*d:k*d+nd]...)
		}
		if feasible != nil && !feasible(pl) {
			continue
		}
		if fp := proxObjective(f, pert, n, rho, d, nd); fp < fx-1e-9 {
			t.Fatalf("found better point: f(pert)=%g < f(x)=%g", fp, fx)
		}
	}
}

func TestIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkProx(t, Identity{}, func(s []float64) float64 { return 0 }, nil, 3, 2, 2, rng)
}

func TestBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	op := Box{Lo: -1, Hi: 1, Dim: 2}
	feas := func(s []float64) bool {
		for _, v := range s {
			if v < -1-1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 2, 3, 2, rng)
}

func TestNonNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	op := NonNeg{Dim: 1}
	feas := func(s []float64) bool {
		for _, v := range s {
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 2, 2, 1, rng)
}

func TestL1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lam := 0.7
	op := L1{Lambda: lam, Dim: 2}
	f := func(s []float64) float64 {
		v := 0.0
		for _, x := range s {
			v += lam * math.Abs(x)
		}
		return v
	}
	checkProx(t, op, f, nil, 1, 2, 2, rng)
	// Exact value check: prox of lambda|x| at n with rho: soft(n, lam/rho).
	x := make([]float64, 2)
	op.Eval(x, []float64{2, -0.1}, []float64{1}, 2)
	if !almost(x[0], 1.3) || x[1] != 0 {
		t.Fatalf("L1 eval = %v", x)
	}
}

func TestSemiLasso(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lam := 0.5
	op := SemiLasso{Lambda: lam, Dim: 1}
	f := func(s []float64) float64 {
		v := 0.0
		for _, x := range s {
			v += lam * x
		}
		return v
	}
	feas := func(s []float64) bool {
		for _, v := range s {
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	checkProx(t, op, f, feas, 1, 2, 1, rng)
	// Closed form (paper eq. 5): (n - lambda/rho)^+.
	x := make([]float64, 1)
	op.Eval(x, []float64{2}, []float64{2}, 1)
	if !almost(x[0], 1.75) {
		t.Fatalf("SemiLasso(2) = %g, want 1.75", x[0])
	}
	op.Eval(x, []float64{0.1}, []float64{2}, 1)
	if x[0] != 0 {
		t.Fatalf("SemiLasso(0.1) = %g, want 0", x[0])
	}
}

func TestSquaredNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := 0.25
	op := SquaredNorm{C: c, Dim: 2}
	f := func(s []float64) float64 { return c / 2 * linalg.Norm2Sq(s) }
	checkProx(t, op, f, nil, 1, 2, 2, rng)
	// Paper Appendix C.2: w = rho/(rho+1) n for C=1.
	op1 := SquaredNorm{C: 1, Dim: 1}
	x := make([]float64, 1)
	op1.Eval(x, []float64{3}, []float64{2}, 1)
	if !almost(x[0], 2.0) {
		t.Fatalf("SquaredNorm = %g, want 2", x[0])
	}
}

func TestSquaredNormNegativeReward(t *testing.T) {
	// Concave reward -delta/2 r^2 with rho > delta: the packing radius
	// operator (paper Appendix A): r = rho n / (rho - delta).
	op := SquaredNorm{C: -0.5, Dim: 1}
	x := make([]float64, 1)
	op.Eval(x, []float64{1}, []float64{1}, 1)
	if !almost(x[0], 2.0) {
		t.Fatalf("reward prox = %g, want 2", x[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbounded subproblem")
		}
	}()
	bad := SquaredNorm{C: -2, Dim: 1}
	bad.Eval(x, []float64{1}, []float64{1}, 1)
}

func TestConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	op := Consensus{Dim: 2}
	feas := func(s []float64) bool {
		// blocks of 2 must be equal
		for k := 2; k < len(s); k += 2 {
			if math.Abs(s[k]-s[0]) > 1e-9 || math.Abs(s[k+1]-s[1]) > 1e-9 {
				return false
			}
		}
		return true
	}
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 3, 3, 2, rng)
	// Weighted average check (paper Appendix C.4).
	x := make([]float64, 4)
	op2 := Consensus{Dim: 2}
	op2.Eval(x, []float64{1, 0, 3, 0}, []float64{1, 3}, 2)
	if !almost(x[0], 2.5) || !almost(x[2], 2.5) {
		t.Fatalf("Consensus = %v, want blocks 2.5", x)
	}
}

func TestL2Ball(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	op := L2Ball{R: 1.5, Dim: 2}
	feas := func(s []float64) bool {
		for k := 0; k+2 <= len(s); k += 2 {
			if linalg.Norm2(s[k:k+2]) > 1.5+1e-9 {
				return false
			}
		}
		return true
	}
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 2, 2, 2, rng)
	// Interior point untouched.
	x := make([]float64, 2)
	op.Eval(x, []float64{0.3, 0.4}, []float64{1}, 2)
	if x[0] != 0.3 || x[1] != 0.4 {
		t.Fatalf("interior point moved: %v", x)
	}
}

func TestHalfspace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Constraint s0 + 2 s1 >= 1 over a degree-2 node with nd=1.
	op := Halfspace{A: []float64{1, 2}, B: 1, Dim: 1}
	feas := func(s []float64) bool { return s[0]+2*s[1] >= 1-1e-9 }
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 2, 2, 1, rng)

	// Feasible input is untouched.
	x := make([]float64, 2)
	op.Eval(x, []float64{5, 5}, []float64{1, 1}, 1)
	if x[0] != 5 || x[1] != 5 {
		t.Fatalf("feasible point moved: %v", x)
	}
	// Infeasible input lands exactly on the boundary.
	op.Eval(x, []float64{0, 0}, []float64{1, 1}, 1)
	if g := x[0] + 2*x[1] - 1; math.Abs(g) > 1e-12 {
		t.Fatalf("projection not on boundary: %g", g)
	}
}

func TestHalfspaceWeighted(t *testing.T) {
	// With rho_0 >> rho_1, coordinate 1 absorbs the correction.
	op := Halfspace{A: []float64{1, 1}, B: 2, Dim: 1}
	x := make([]float64, 2)
	op.Eval(x, []float64{0, 0}, []float64{1e6, 1}, 1)
	if !(x[1] > 1.99 && x[0] < 0.01) {
		t.Fatalf("weighted halfspace projection = %v", x)
	}
}

func TestAffineEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Two blocks of dim 2; constraint: block0 == block1 (2 equations).
	c := linalg.MatFromRows([][]float64{
		{1, 0, -1, 0},
		{0, 1, 0, -1},
	})
	op, err := NewAffineEquality(c, []float64{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	feas := func(s []float64) bool {
		return math.Abs(s[0]-s[2]) < 1e-9 && math.Abs(s[1]-s[3]) < 1e-9
	}
	checkProx(t, op, func(s []float64) float64 { return 0 }, feas, 2, 3, 2, rng)
	// Against Consensus: both compute the weighted average.
	n := []float64{1, 2, 0, 3, 0, 0}
	rho := []float64{2, 1}
	xa := make([]float64, 6)
	xc := make([]float64, 6)
	op.Eval(xa, n, rho, 3)
	Consensus{Dim: 2}.Eval(xc, n, rho, 3)
	for i := 0; i < 2; i++ {
		if !almost(xa[i], xc[i]) || !almost(xa[3+i], xc[3+i]) {
			t.Fatalf("AffineEquality %v != Consensus %v", xa, xc)
		}
	}
}

func TestAffineEqualityRhoChangeRefactors(t *testing.T) {
	c := linalg.MatFromRows([][]float64{{1, -1}})
	op, err := NewAffineEquality(c, []float64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	op.Eval(x, []float64{0, 4}, []float64{1, 1}, 1)
	if !almost(x[0], 2) {
		t.Fatalf("equal-rho average = %v", x)
	}
	// Change rho: the cached factorization must be refreshed.
	op.Eval(x, []float64{0, 4}, []float64{3, 1}, 1)
	if !almost(x[0], 1) { // weighted avg (3*0+1*4)/4 = 1
		t.Fatalf("after rho change = %v, want 1", x)
	}
}

func TestAffineEqualityErrors(t *testing.T) {
	c := linalg.MatFromRows([][]float64{{1, -1}})
	if _, err := NewAffineEquality(c, []float64{0}, 0); err == nil {
		t.Fatal("expected dim error")
	}
	c3 := linalg.MatFromRows([][]float64{{1, -1, 2}})
	if _, err := NewAffineEquality(c3, []float64{0}, 2); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := linalg.MatFromRows([][]float64{{2, 0.5}, {0.5, 1}})
	lin := []float64{0.3, -0.2}
	op, err := NewQuadratic(q, lin)
	if err != nil {
		t.Fatal(err)
	}
	f := func(s []float64) float64 {
		qs := make([]float64, 2)
		q.MulVec(qs, s)
		return 0.5*linalg.Dot(s, qs) + linalg.Dot(lin, s)
	}
	checkProx(t, op, f, nil, 1, 3, 2, rng)
}

func TestQuadraticRhoCaching(t *testing.T) {
	q := linalg.Eye(1)
	op, err := NewQuadratic(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1)
	op.Eval(x, []float64{4}, []float64{1}, 1)
	if !almost(x[0], 2) { // (1+1)^{-1} * 1*4
		t.Fatalf("rho=1: %v", x)
	}
	op.Eval(x, []float64{4}, []float64{3}, 1)
	if !almost(x[0], 3) { // (1+3)^{-1} * 3*4
		t.Fatalf("rho=3: %v", x)
	}
}

func TestDiagQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := []float64{2, 0.5}
	op := DiagQuadratic{W: w, Dim: 2}
	f := func(s []float64) float64 {
		return 0.5 * (w[0]*s[0]*s[0] + w[1]*s[1]*s[1])
	}
	checkProx(t, op, f, nil, 1, 3, 2, rng)
	// Agreement with the dense Quadratic on a diagonal Q.
	q := linalg.MatFromRows([][]float64{{2, 0}, {0, 0.5}})
	dense, _ := NewQuadratic(q, nil)
	n := []float64{1.2, -3.4, 9}
	rho := []float64{1.7}
	xd := make([]float64, 3)
	xq := make([]float64, 3)
	op.Eval(xd, n, rho, 3)
	dense.Eval(xq, n, rho, 3)
	for i := range xd {
		if !almost(xd[i], xq[i]) {
			t.Fatalf("diag %v != dense %v", xd, xq)
		}
	}
}

func TestClamp(t *testing.T) {
	op := Clamp{Value: []float64{1, 2}}
	x := make([]float64, 3)
	op.Eval(x, []float64{9, 9, 9}, []float64{1}, 3)
	if x[0] != 1 || x[1] != 2 || x[2] != 9 {
		t.Fatalf("Clamp = %v", x)
	}
}

func TestWorkEstimatesPositive(t *testing.T) {
	q := linalg.Eye(2)
	quad, _ := NewQuadratic(q, nil)
	c := linalg.MatFromRows([][]float64{{1, -1}})
	aff, _ := NewAffineEquality(c, []float64{0}, 1)
	ops := []graph.Op{
		Identity{}, Box{Dim: 1}, NonNeg{Dim: 1}, L1{Lambda: 1, Dim: 1},
		SemiLasso{Lambda: 1, Dim: 1}, SquaredNorm{C: 1, Dim: 1},
		Consensus{Dim: 1}, L2Ball{R: 1, Dim: 1},
		Halfspace{A: []float64{1, 1}, B: 0, Dim: 1},
		quad, aff, DiagQuadratic{W: []float64{1}, Dim: 1}, Clamp{Value: []float64{0}},
	}
	for i, op := range ops {
		w := op.Work(2, 2)
		if w.MemWords <= 0 {
			t.Errorf("op %d (%T): MemWords = %g", i, op, w.MemWords)
		}
		if w.Flops < 0 || w.Branchy < 0 || w.Branchy > 1 {
			t.Errorf("op %d (%T): bad work %+v", i, op, w)
		}
	}
}

func TestWorkAdd(t *testing.T) {
	a := graph.Work{Flops: 1, MemWords: 2, Branchy: 0.2}
	b := graph.Work{Flops: 3, MemWords: 4, Branchy: 0.7}
	s := a.Add(b)
	if s.Flops != 4 || s.MemWords != 6 || s.Branchy != 0.7 {
		t.Fatalf("Work.Add = %+v", s)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }
