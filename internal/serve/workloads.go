package serve

import (
	"repro/internal/workload"
)

// problem is the server-side view of a built workload; it is the shared
// workload.Problem admission surface (the bulk pipeline admits through
// the same registry, so a spec means the same thing on both paths).
type problem = workload.Problem

// Workloads lists the problem domains the server accepts, sorted.
func Workloads() []string { return workload.Names() }
