package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/lasso"
	"repro/internal/mpc"
	"repro/internal/packing"
	"repro/internal/svm"
)

// problem is the uniform server-side view of a built workload: the
// cacheable graph owner plus reset and quality-metric hooks.
type problem interface {
	graph.Pooled
	// Reset reinitializes ADMM state so a (possibly cache-reused) graph
	// starts a fresh solve.
	Reset()
	// Metrics reports domain-specific quality numbers after a solve.
	Metrics() map[string]float64
}

// admission is a validated solve admission: the shape key for the graph
// cache plus a deferred builder run on a pool worker on cache miss.
type admission struct {
	key   string
	build func() (problem, error)
}

// parseSpec decodes raw strictly (unknown fields are errors, so typos in
// specs fail at admission instead of silently using defaults).
func parseSpec(raw json.RawMessage, into any) error {
	if len(raw) == 0 {
		return fmt.Errorf("missing spec")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	return nil
}

// Per-workload size caps. The queue-depth and worker-count knobs bound
// how many problems run, and MaxIterLimit bounds how long each runs —
// these bound how *large* each is, so a single request cannot demand an
// arbitrarily large factor graph (packing's node count is quadratic in
// N; lasso's design matrix is M x P) and OOM the process at build time.
const (
	maxLassoM     = 8192
	maxLassoP     = 512
	maxSVMN       = 8192
	maxSVMDim     = 256
	maxMPCHorizon = 100000 // the paper's own sweep ceiling
	maxPackingN   = 512
)

// parsers maps workload names to spec parsers. Each parser validates
// the raw spec's required fields and size caps at admission time;
// instance construction itself is deferred to the worker pool.
var parsers = map[string]func(json.RawMessage) (admission, error){
	"lasso": func(raw json.RawMessage) (admission, error) {
		var s lasso.Spec
		if err := parseSpec(raw, &s); err != nil {
			return admission{}, err
		}
		if s.M < 2 || s.M > maxLassoM {
			return admission{}, fmt.Errorf("lasso: m = %d, need 2..%d", s.M, maxLassoM)
		}
		if s.P > maxLassoP {
			return admission{}, fmt.Errorf("lasso: p = %d, max %d", s.P, maxLassoP)
		}
		return admission{key: s.Key(), build: func() (problem, error) {
			p, err := lasso.FromSpec(s)
			if err != nil {
				return nil, err
			}
			return lassoProblem{p}, nil
		}}, nil
	},
	"svm": func(raw json.RawMessage) (admission, error) {
		var s svm.Spec
		if err := parseSpec(raw, &s); err != nil {
			return admission{}, err
		}
		if s.N < 2 || s.N > maxSVMN {
			return admission{}, fmt.Errorf("svm: n = %d, need 2..%d", s.N, maxSVMN)
		}
		if s.Dim > maxSVMDim {
			return admission{}, fmt.Errorf("svm: dim = %d, max %d", s.Dim, maxSVMDim)
		}
		return admission{key: s.Key(), build: func() (problem, error) {
			p, err := svm.FromSpec(s)
			if err != nil {
				return nil, err
			}
			return svmProblem{p}, nil
		}}, nil
	},
	"mpc": func(raw json.RawMessage) (admission, error) {
		var s mpc.Spec
		if err := parseSpec(raw, &s); err != nil {
			return admission{}, err
		}
		if s.K < 1 || s.K > maxMPCHorizon {
			return admission{}, fmt.Errorf("mpc: k = %d, need 1..%d", s.K, maxMPCHorizon)
		}
		if s.Q0 != nil && len(s.Q0) != mpc.StateDim {
			return admission{}, fmt.Errorf("mpc: q0 must have length %d", mpc.StateDim)
		}
		return admission{key: s.Key(), build: func() (problem, error) {
			p, err := mpc.FromSpec(s)
			if err != nil {
				return nil, err
			}
			return mpcProblem{p}, nil
		}}, nil
	},
	"packing": func(raw json.RawMessage) (admission, error) {
		var s packing.Spec
		if err := parseSpec(raw, &s); err != nil {
			return admission{}, err
		}
		if s.N < 1 || s.N > maxPackingN {
			return admission{}, fmt.Errorf("packing: n = %d, need 1..%d", s.N, maxPackingN)
		}
		return admission{key: s.Key(), build: func() (problem, error) {
			p, err := packing.FromSpec(s)
			if err != nil {
				return nil, err
			}
			return packingProblem{p, s}, nil
		}}, nil
	},
}

// Workloads lists the problem domains the server accepts, sorted.
func Workloads() []string {
	names := make([]string, 0, len(parsers))
	for n := range parsers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type lassoProblem struct{ *lasso.Problem }

func (p lassoProblem) Reset() { p.Graph.InitZero() }
func (p lassoProblem) Metrics() map[string]float64 {
	x := p.Coefficients()
	return map[string]float64{
		"objective":      p.Objective(x),
		"optimality_gap": p.OptimalityGap(x),
	}
}

type svmProblem struct{ *svm.Problem }

func (p svmProblem) Reset() { p.Graph.InitZero() }
func (p svmProblem) Metrics() map[string]float64 {
	return map[string]float64{
		"accuracy":        p.Accuracy(p.Cfg.Data),
		"hinge_objective": p.HingeObjective(),
		"plane_spread":    p.PlaneSpread(),
	}
}

type mpcProblem struct{ *mpc.Problem }

func (p mpcProblem) Reset() { p.Graph.InitZero() }
func (p mpcProblem) Metrics() map[string]float64 {
	return map[string]float64{
		"cost":              p.Cost(),
		"dynamics_residual": p.DynamicsResidual(),
		"u0":                p.Input(0),
	}
}

type packingProblem struct {
	*packing.Problem
	spec packing.Spec
}

// Reset re-randomizes from the spec's seed: packing is nonconvex, and a
// deterministic init keeps identical requests byte-reproducible.
func (p packingProblem) Reset() {
	seed := p.spec.Seed
	if seed == 0 {
		seed = 1
	}
	p.InitRandom(rand.New(rand.NewSource(seed)))
}

func (p packingProblem) Metrics() map[string]float64 {
	v := p.CheckValidity()
	return map[string]float64{
		"coverage":    p.Coverage(),
		"max_overlap": v.MaxOverlap,
		"max_wall":    v.MaxWall,
		"min_radius":  v.MinRadius,
	}
}
