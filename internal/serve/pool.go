package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; HTTP maps it to 429.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: pool closed")

// pool is the bounded worker pool jobs are dispatched onto. Two knobs
// bound admission: the number of workers caps solve concurrency, and
// the queue depth caps how many accepted-but-not-started jobs wait.
type pool struct {
	jobs chan *Job
	run  func(*Job)
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// newPool starts workers goroutines draining a queue of the given
// depth; run executes one job.
func newPool(workers, depth int, run func(*Job)) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &pool{jobs: make(chan *Job, depth), run: run}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.run(j)
	}
}

// Submit enqueues a job without blocking. It returns ErrQueueFull when
// the queue is at depth and ErrClosed after Close.
func (p *pool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth reports how many accepted jobs are waiting for a worker.
func (p *pool) Depth() int { return len(p.jobs) }

// Close stops admission and waits for in-flight jobs to finish.
func (p *pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
