package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, v
}

// TestSolveHandler is the table-driven admission test: malformed
// requests are rejected with 400 at admission, and every workload
// solves under every executor family.
func TestSolveHandler(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	tests := []struct {
		name     string
		body     string
		wantCode int
	}{
		{"malformed body", `{`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"tsp","spec":{"n":4}}`, http.StatusBadRequest},
		{"missing spec", `{"workload":"lasso"}`, http.StatusBadRequest},
		{"unknown spec field", `{"workload":"lasso","spec":{"m":16,"bogus":1}}`, http.StatusBadRequest},
		{"bad spec value", `{"workload":"lasso","spec":{"m":1}}`, http.StatusBadRequest},
		{"svm too few points", `{"workload":"svm","spec":{"n":1}}`, http.StatusBadRequest},
		{"mpc zero horizon", `{"workload":"mpc","spec":{"k":0}}`, http.StatusBadRequest},
		{"mpc bad q0", `{"workload":"mpc","spec":{"k":4,"q0":[1,2]}}`, http.StatusBadRequest},
		{"packing zero circles", `{"workload":"packing","spec":{"n":0}}`, http.StatusBadRequest},
		{"unknown executor kind", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"gpu"}}`, http.StatusBadRequest},
		{"balanced_z on serial", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"serial","balanced_z":true}}`, http.StatusBadRequest},
		{"max_iter over limit", `{"workload":"lasso","spec":{"m":16},"max_iter":100000000}`, http.StatusBadRequest},
		{"lasso m over cap", `{"workload":"lasso","spec":{"m":100000000}}`, http.StatusBadRequest},
		{"lasso p over cap", `{"workload":"lasso","spec":{"m":16,"p":100000}}`, http.StatusBadRequest},
		{"svm n over cap", `{"workload":"svm","spec":{"n":100000000}}`, http.StatusBadRequest},
		{"mpc k over cap", `{"workload":"mpc","spec":{"k":100000000}}`, http.StatusBadRequest},
		{"packing n over cap", `{"workload":"packing","spec":{"n":100000}}`, http.StatusBadRequest},
		{"executor workers over cap", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"barrier","workers":1000000000}}`, http.StatusBadRequest},
		{"shards on serial", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"serial","shards":2}}`, http.StatusBadRequest},
		{"unknown partition strategy", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"sharded","partition":"metis"}}`, http.StatusBadRequest},
		{"shards over cap", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"sharded","shards":1000000}}`, http.StatusBadRequest},

		{"lasso serial", `{"workload":"lasso","spec":{"m":16},"max_iter":100}`, http.StatusOK},
		{"mpc sharded", `{"workload":"mpc","spec":{"k":8},"executor":{"kind":"sharded","shards":2,"partition":"balanced"},"max_iter":100}`, http.StatusOK},
		{"packing sharded greedy", `{"workload":"packing","spec":{"n":4},"executor":{"kind":"sharded","shards":3,"partition":"greedy-mincut"},"max_iter":100}`, http.StatusOK},
		{"packing sharded mincut+fm", `{"workload":"packing","spec":{"n":4},"executor":{"kind":"sharded","shards":3,"partition":"mincut+fm"},"max_iter":100}`, http.StatusOK},
		{"lasso sharded refined", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"sharded","shards":2,"refine":true},"max_iter":100}`, http.StatusOK},
		{"refine on non-sharded", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"serial","refine":true}}`, http.StatusBadRequest},
		{"svm parallel-for", `{"workload":"svm","spec":{"n":8},"executor":{"kind":"parallel-for","workers":2},"max_iter":100}`, http.StatusOK},
		{"mpc barrier", `{"workload":"mpc","spec":{"k":4},"executor":{"kind":"barrier","workers":2},"max_iter":100}`, http.StatusOK},
		{"packing async", `{"workload":"packing","spec":{"n":3},"executor":{"kind":"async"},"max_iter":100}`, http.StatusOK},
		{"lasso balanced-z parallel-for", `{"workload":"lasso","spec":{"m":16},"executor":{"kind":"parallel-for","workers":2,"balanced_z":true,"dynamic":true},"max_iter":100}`, http.StatusOK},
		{"mpc with tolerance", `{"workload":"mpc","spec":{"k":4},"rel_tol":1e-9,"abs_tol":1e-9,"max_iter":5000}`, http.StatusOK},
		{"mpc auto executor", `{"workload":"mpc","spec":{"k":8},"executor":{"kind":"auto"},"max_iter":100}`, http.StatusOK},
		{"svm unfused reference", `{"workload":"svm","spec":{"n":8},"executor":{"kind":"serial","fused":false},"max_iter":100}`, http.StatusOK},
		{"sharded fused off", `{"workload":"mpc","spec":{"k":8},"executor":{"kind":"sharded","shards":2,"fused":false},"max_iter":100}`, http.StatusOK},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, v := postSolve(t, ts, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status = %d (job %+v), want %d", code, v, tc.wantCode)
			}
			if tc.wantCode != http.StatusOK {
				return
			}
			if v.Status != StatusDone || v.Result == nil {
				t.Fatalf("job = %+v, want done with result", v)
			}
			if v.Result.Iterations <= 0 {
				t.Errorf("iterations = %d, want > 0", v.Result.Iterations)
			}
			if len(v.Result.Metrics) == 0 {
				t.Errorf("no quality metrics reported")
			}
		})
	}
}

// TestResidualsReported checks that tolerance-bearing requests surface
// the final residuals (and plain fixed-iteration requests don't).
func TestResidualsReported(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postSolve(t, ts, `{"workload":"mpc","spec":{"k":4},"rel_tol":1e-9,"abs_tol":1e-9,"max_iter":5000}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if v.Result.Primal == nil || v.Result.Dual == nil {
		t.Errorf("residuals missing with tolerances set: %+v", v.Result)
	}
	code, v = postSolve(t, ts, `{"workload":"mpc","spec":{"k":4},"max_iter":50}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if v.Result.Primal != nil || v.Result.Dual != nil {
		t.Errorf("residuals reported without residual checking: %+v", v.Result)
	}
}

// TestGraphCacheHit is the acceptance scenario: the second
// identical-shape request must reuse the cached factor graph (and still
// produce the same solution metrics, since Reset clears all ADMM state).
func TestGraphCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"workload":"lasso","spec":{"m":24,"blocks":4,"lambda":0.3},"max_iter":300}`

	code, first := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	if first.CacheHit {
		t.Fatalf("first request claims a cache hit")
	}
	code, second := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if !second.CacheHit {
		t.Fatalf("second identical-shape request missed the graph cache")
	}
	cs := s.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", cs)
	}
	// Determinism across reuse: same spec, same init, same iterations —
	// byte-identical quality metrics.
	for k, v1 := range first.Result.Metrics {
		if v2 := second.Result.Metrics[k]; v2 != v1 {
			t.Errorf("metric %s diverged across cache reuse: %g vs %g", k, v1, v2)
		}
	}
	// A different shape must not hit.
	code, third := postSolve(t, ts, `{"workload":"lasso","spec":{"m":32,"blocks":4,"lambda":0.3},"max_iter":300}`)
	if code != http.StatusOK {
		t.Fatalf("third request: status %d", code)
	}
	if third.CacheHit {
		t.Errorf("different-shape request claims a cache hit")
	}
}

// TestAsyncJob exercises the fire-and-poll path: 202 on submit, then
// GET /v1/jobs/{id} until done.
func TestAsyncJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postSolve(t, ts, `{"workload":"svm","spec":{"n":8},"max_iter":200,"wait":false}`)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", code)
	}
	if v.ID == "" {
		t.Fatalf("no job id in 202 response: %+v", v)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jv JobView
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jv.Status == StatusDone {
			if jv.Result == nil || jv.Result.Iterations != 200 {
				t.Fatalf("finished job = %+v, want 200 iterations", jv)
			}
			break
		}
		if jv.Status == StatusFailed {
			t.Fatalf("job failed: %s", jv.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobNotFound covers the 404 path.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestClosedServer maps pool shutdown to 503.
func TestClosedServer(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	code, _ := postSolve(t, ts, `{"workload":"mpc","spec":{"k":2},"max_iter":10}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", code)
	}
}

// TestHealthAndMetrics checks the observability endpoints end to end:
// healthz lists the workloads, and a completed solve shows up in every
// metric family.
func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string   `json:"status"`
		Workloads []string `json:"workloads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Workloads) != 4 {
		t.Fatalf("healthz = %+v, want ok with 4 workloads", health)
	}

	code, _ := postSolve(t, ts, `{"workload":"mpc","spec":{"k":4},"max_iter":120}`)
	if code != http.StatusOK {
		t.Fatalf("solve status = %d", code)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(rawBytes)
	for _, want := range []string{
		`paradmm_requests_total{workload="mpc",outcome="ok"} 1`,
		"paradmm_iterations_total 120",
		`paradmm_phase_nanos_total{phase="x-update"}`,
		"paradmm_graph_cache_misses_total 1",
		"paradmm_jobs_inflight 0",
		"paradmm_queue_depth 0",
		"paradmm_shard_solves_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
}

// TestShardMetricsReported: a sharded solve must surface its partition
// footprint (boundary vars/edges, shard count) through /metrics.
func TestShardMetricsReported(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, v := postSolve(t, ts,
		`{"workload":"mpc","spec":{"k":16},"executor":{"kind":"sharded","shards":4},"max_iter":200}`)
	if code != http.StatusOK || v.Status != StatusDone {
		t.Fatalf("sharded solve: status %d, job %+v", code, v)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(rawBytes)
	for _, want := range []string{
		"paradmm_shard_solves_total 1",
		"paradmm_shard_shards 4",
		"paradmm_shard_boundary_vars ",
		"paradmm_shard_boundary_edges ",
		"paradmm_shard_sync_wait_nanos_total ",
		"paradmm_shard_boundary_z_nanos_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, text)
		}
	}
	// The MPC chain must not be boundary-dominated under the default
	// balanced strategy.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "paradmm_shard_boundary_vars ") {
			var n int
			if _, err := fmt.Sscanf(line, "paradmm_shard_boundary_vars %d", &n); err != nil {
				t.Fatal(err)
			}
			if n <= 0 || n > 8 {
				t.Errorf("boundary vars = %d, want 1..8 on an MPC chain", n)
			}
		}
	}
}
