//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; the
// steady-state allocation gate is meaningless under -race because the
// runtime makes sync.Pool drop items at random to widen interleavings.
const raceEnabled = false
