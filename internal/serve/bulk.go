package serve

import (
	"net/http"

	"repro/internal/bulk"
)

// handleBulk streams a JSONL request body through the bulk pipeline
// (internal/bulk) and writes the JSONL result stream back chunked, in
// input order, flushing per record. Concurrent streams are bounded by
// Config.BulkStreams — the same 429 backpressure contract as the solve
// pool's queue — and each stream's solves share the server's graph
// cache. Per-record failures become error records inside the stream;
// the response status is already 200 by the time they can happen.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	select {
	case s.bulkSem <- struct{}{}:
		defer func() { <-s.bulkSem }()
	default:
		s.met.countBulk("rejected")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "bulk stream limit reached"})
		return
	}

	// Results stream back while the request body is still being read;
	// HTTP/1.1 needs full duplex opted in (HTTP/2 always has it, and
	// returns an error here that is safe to ignore).
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: a client may wait for them before
	// sending (or while still sending) its request body, and the first
	// result record can be a long solve away.
	rc.Flush()

	s.met.bulkInflight.Add(1)
	defer s.met.bulkInflight.Add(-1)

	// Run joins its reader goroutine before returning, so r.Body is
	// never read after this handler returns. The join cannot hang: the
	// only thing that cancels r.Context() is the connection going away,
	// which also unblocks the in-flight Body.Read.
	opts := bulk.Options{
		Workers:      s.cfg.BulkWorkers,
		Cache:        s.cache,
		MaxIterLimit: s.cfg.MaxIterLimit,
	}
	// Assign only when non-nil: a nil *store.Store stuffed into the
	// interface field would read as "store configured" to the pipeline.
	if s.cfg.Store != nil {
		opts.Store = s.cfg.Store
	}
	stats, err := bulk.Run(r.Context(), r.Body, flushWriter{w, rc}, opts)
	outcome := "ok"
	if err != nil {
		// Client gone or body unreadable mid-stream; whatever was
		// written stands.
		outcome = "aborted"
	}
	s.met.recordBulk(stats, outcome)
}

// flushWriter pushes each result record to the client as it is
// written, so a slow stream delivers results incrementally.
type flushWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (f flushWriter) Write(b []byte) (int, error) {
	n, err := f.w.Write(b)
	if err == nil {
		f.rc.Flush()
	}
	return n, err
}
