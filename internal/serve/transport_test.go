package serve

import (
	"io"
	"strings"
	"testing"
)

// TestSolveSocketsLoopback: a request selecting the sharded executor on
// the sockets transport (no addrs = in-process loopback streams) solves
// through the HTTP path, and /metrics surfaces the measured exchange
// traffic next to the partition's predicted cut cost.
func TestSolveSocketsLoopback(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	code, v := postSolve(t, ts,
		`{"workload":"mpc","spec":{"k":24},"max_iter":60,
		  "executor":{"kind":"sharded","shards":2,"transport":"sockets"}}`)
	if code != 200 || v.Status != StatusDone {
		t.Fatalf("code %d, job %+v", code, v)
	}
	if v.Result == nil || v.Result.Iterations != 60 {
		t.Fatalf("result %+v", v.Result)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, metric := range []string{"paradmm_shard_bytes_per_iter", "paradmm_shard_cut_cost_words", "paradmm_shard_solves_total 1"} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}
	if strings.Contains(body, "paradmm_shard_bytes_per_iter 0\n") {
		t.Error("sockets solve reported zero exchange bytes")
	}
}

// TestSolveTransportValidation: transport fields are validated at
// admission — a non-sharded executor with a transport is a 400, as is
// an addrs/shards mismatch.
func TestSolveTransportValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"serial","transport":"sockets"}}`,
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"sharded","transport":"telepathy"}}`,
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"sharded","shards":3,"transport":"sockets","addrs":["unix:/tmp/w0"]}}`,
	}
	for i, body := range bad {
		if code, _ := postSolve(t, ts, body); code != 400 {
			t.Errorf("request %d admitted with code %d", i, code)
		}
	}
}
