package serve

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolMaxConcurrency proves the worker bound: with W workers and a
// run function that blocks, at most W jobs ever execute at once even
// when the queue holds many more.
func TestPoolMaxConcurrency(t *testing.T) {
	const workers, jobs = 3, 12
	var cur, peak atomic.Int64
	release := make(chan struct{})
	p := newPool(workers, jobs, func(*Job) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		<-release
		cur.Add(-1)
	})
	for i := 0; i < jobs; i++ {
		if err := p.Submit(&Job{}); err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
	}
	// Wait until the pool is saturated, then release everything.
	deadline := time.Now().Add(5 * time.Second)
	for cur.Load() != workers {
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %d of %d workers busy", cur.Load(), workers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	p.Close()
	if got := peak.Load(); got != workers {
		t.Errorf("peak concurrency = %d, want exactly %d", got, workers)
	}
}

// TestPoolQueueBound proves the admission bound: one busy worker plus a
// depth-1 queue admits exactly two jobs; the third gets ErrQueueFull.
func TestPoolQueueBound(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	p := newPool(1, 1, func(*Job) {
		started <- struct{}{}
		<-release
	})
	if err := p.Submit(&Job{}); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	<-started // worker is now busy; the queue is empty
	if err := p.Submit(&Job{}); err != nil {
		t.Fatalf("second Submit (should occupy the queue slot): %v", err)
	}
	if err := p.Submit(&Job{}); err != ErrQueueFull {
		t.Fatalf("third Submit = %v, want ErrQueueFull", err)
	}
	if d := p.Depth(); d != 1 {
		t.Errorf("Depth() = %d, want 1", d)
	}
	close(release)
	<-started // second job runs
	p.Close()
	if err := p.Submit(&Job{}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}
