package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/admm"
	"repro/internal/workload"
)

// FuzzParseSpec drives the admission parsers (strict JSON decoding of
// the four workload specs plus size-cap validation) with arbitrary
// bytes: no input may panic, and any accepted admission must carry a
// usable cache key. Build functions are deliberately not run — the
// fuzzer's job is the parsing/validation boundary, which is what faces
// untrusted request bodies.
//
// Run as a regression suite by plain `go test` over the seed corpus;
// run `go test -fuzz=FuzzParseSpec ./internal/serve` to explore.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range [][2]string{
		{"lasso", `{"m":64,"blocks":4,"lambda":0.3}`},
		{"lasso", `{"m":-1}`},
		{"lasso", `{"m":1e99}`},
		{"svm", `{"n":200,"dim":2}`},
		{"svm", `{"n":200,"bogus":true}`},
		{"mpc", `{"k":20}`},
		{"mpc", `{"k":4,"q0":[0.1,0,0,0]}`},
		{"mpc", `{"k":4,"q0":[1]}`},
		{"packing", `{"n":10,"seed":7}`},
		{"packing", `{"n":null}`},
		{"lasso", `{`},
		{"mpc", ``},
		{"svm", `[1,2,3]`},
		{"packing", `"n"`},
	} {
		f.Add(seed[0], []byte(seed[1]))
	}
	f.Fuzz(func(t *testing.T, name string, raw []byte) {
		adm, err := workload.Parse(name, json.RawMessage(raw))
		if err != nil {
			return
		}
		if adm.Key == "" {
			t.Fatalf("accepted spec %q with empty cache key", raw)
		}
		if adm.Build == nil {
			t.Fatalf("accepted spec %q with nil builder", raw)
		}
	})
}

// FuzzSolveRequestDecode covers the outer request envelope the HTTP
// handler decodes before workload dispatch: arbitrary bodies must
// either fail decoding or produce an executor spec that Validate
// classifies without panicking, and a passing spec's kind must be one
// the executor registry knows.
func FuzzSolveRequestDecode(f *testing.F) {
	f.Add([]byte(`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"sharded","shards":2}}`))
	f.Add([]byte(`{"workload":"lasso","spec":{"m":16},"executor":{"kind":"parallel-for","workers":2}}`))
	f.Add([]byte(`{"workload":"packing","spec":{"n":3},"max_iter":50,"wait":false}`))
	f.Add([]byte(`{"executor":{"kind":"nope"}}`))
	f.Add([]byte(`{"workload":1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var req SolveRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			return
		}
		if req.Executor.Validate() != nil {
			return
		}
		switch req.Executor.Kind {
		case "", admm.ExecSerial, admm.ExecParallelFor, admm.ExecBarrier, admm.ExecAsync, admm.ExecSharded:
		default:
			t.Fatalf("Validate accepted unknown kind %q", req.Executor.Kind)
		}
	})
}
