package serve_test

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/serve"
)

// ExampleServer is a complete serve-client round trip: start the
// batched solve service, POST an MPC spec with a per-request executor
// choice, and read the finished job back — the same JSON a curl client
// of cmd/paradmm-serve sees.
func ExampleServer() {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{
		"workload": "mpc",
		"spec": {"k": 4},
		"executor": {"kind": "parallel-for", "workers": 2},
		"max_iter": 500
	}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var job serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	fmt.Println("status:", job.Status)
	fmt.Println("iterations:", job.Result.Iterations)
	fmt.Println("cache hit:", job.CacheHit)
	// Output:
	// status: done
	// iterations: 500
	// cache hit: false
}
