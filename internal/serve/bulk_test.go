package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/bulk"
)

// TestBulkEndpointMatchesPipeline pins the endpoint's determinism
// contract: POSTing a generated mixed-workload stream (including
// malformed lines) returns byte-for-byte the output of running the
// pipeline directly with the server's options.
func TestBulkEndpointMatchesPipeline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, BulkWorkers: 4})

	var in bytes.Buffer
	if err := bulk.Generate(&in, 150, 5); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := bulk.Run(context.Background(), bytes.NewReader(in.Bytes()), &want,
		bulk.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/bulk", "application/x-ndjson", bytes.NewReader(in.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/bulk = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("endpoint stream differs from direct pipeline run:\ngot  %d bytes\nwant %d bytes", len(got), want.Len())
	}

	// The stream's counters must have landed in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mtext, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`paradmm_bulk_streams_total{outcome="ok"} 1`,
		"paradmm_bulk_records_total 150",
		"paradmm_bulk_inflight 0",
	} {
		if !strings.Contains(string(mtext), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mtext)
		}
	}
}

// TestBulkEndpointBackpressure pins the 429 contract: with one allowed
// stream held open, a second POST is rejected immediately and counted.
func TestBulkEndpointBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BulkStreams: 1, BulkWorkers: 1})

	// Hold the single slot open with a request whose body never ends
	// until we close it; reading the first streamed result proves the
	// slot is taken before the probe fires.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/bulk", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	held, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write([]byte(`{"workload":"lasso","spec":{"m":16,"lambda":0.3},"max_iter":20}` + "\n")); err != nil {
		t.Fatal(err)
	}
	firstLine := make([]byte, 1)
	if _, err := held.Body.Read(firstLine); err != nil {
		t.Fatalf("read first streamed byte: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(io.Discard, held.Body)
		held.Body.Close()
	}()

	resp, err := http.Post(ts.URL+"/v1/bulk", "application/x-ndjson",
		strings.NewReader(`{"workload":"lasso","spec":{"m":16,"lambda":0.3},"max_iter":20}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream got %d, want 429", resp.StatusCode)
	}

	pw.Close()
	wg.Wait()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mtext, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mtext), `paradmm_bulk_streams_total{outcome="rejected"} 1`) {
		t.Fatalf("rejected stream not counted:\n%s", mtext)
	}
}
