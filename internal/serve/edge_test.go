package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// solveBodyOfSize renders a valid /v1/solve body padded with interior
// whitespace to exactly n bytes. The padding sits before the closing
// brace so the decoder must consume every byte — trailing bytes after
// the JSON value would never be read and never trip the cap.
func solveBodyOfSize(t *testing.T, n int) string {
	t.Helper()
	core := `{"workload":"lasso","spec":{"m":24,"lambda":0.3},"max_iter":500,"abs_tol":1e-4,"rel_tol":1e-4`
	pad := n - len(core) - 1
	if pad < 0 {
		t.Fatalf("body size %d smaller than the minimal body", n)
	}
	return core + strings.Repeat(" ", pad) + "}"
}

// TestSolveBodyCapBoundary pins the request-body cap at its exact
// boundary: a body of exactly MaxBodyBytes is solved normally, one
// byte more is rejected with 413 and a JSON error envelope.
func TestSolveBodyCapBoundary(t *testing.T) {
	const cap = 512
	_, ts := newTestServer(t, Config{Workers: 2, MaxBodyBytes: cap})

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(solveBodyOfSize(t, cap)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("exactly-at-cap body = %d, want 200: %s", resp.StatusCode, body)
	}

	resp2, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(solveBodyOfSize(t, cap+1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("cap+1 body = %d, want 413", resp2.StatusCode)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&envelope); err != nil {
		t.Fatalf("413 response is not a JSON error envelope: %v", err)
	}
	if !strings.Contains(envelope.Error, fmt.Sprint(cap)) {
		t.Fatalf("413 envelope %q does not name the %d-byte cap", envelope.Error, cap)
	}
}

// TestReadHeaderTimeoutDropsStalledConn pins the slowloris fix end to
// end on a real listener: a connection that stalls mid-headers is
// dropped by ReadHeaderTimeout, while a bulk stream on the same server
// that lives far past that timeout (trickling its request body)
// completes — proving the hardening cannot kill long streams, which is
// why the server sets no WriteTimeout.
func TestReadHeaderTimeoutDropsStalledConn(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := NewHTTPServer(ln.Addr().String(), s.Handler(), 250*time.Millisecond, time.Second)
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	// The live stream: two records trickled 2x the header timeout apart.
	type streamResult struct {
		lines []string
		err   error
	}
	streamDone := make(chan streamResult, 1)
	go func() {
		pr, pw := io.Pipe()
		record := `{"workload":"lasso","spec":{"m":24,"lambda":0.3},"max_iter":2000,"abs_tol":1e-4,"rel_tol":1e-4}` + "\n"
		go func() {
			io.WriteString(pw, record)
			time.Sleep(500 * time.Millisecond)
			io.WriteString(pw, record)
			pw.Close()
		}()
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/bulk", "application/x-ndjson", pr)
		if err != nil {
			streamDone <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		streamDone <- streamResult{lines: lines, err: err}
	}()

	// The slowloris: send half a request line, then stall.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Le"); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	// ReadHeaderTimeout firing surfaces as an error response (or a bare
	// close) followed by EOF; a deadline error instead means the server
	// was still waiting on our headers — the slowloris won. The exact
	// status is a net/http detail; the contract is the prompt EOF.
	if _, err := io.ReadAll(bufio.NewReader(conn)); err != nil {
		t.Fatalf("stalled-header connection still open after %v (read: %v), want a drop near the 250ms header timeout", time.Since(start), err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled-header connection survived %v, want a drop near the 250ms header timeout", waited)
	}

	res := <-streamDone
	if res.err != nil {
		t.Fatalf("live bulk stream killed by edge timeouts: %v", res.err)
	}
	if len(res.lines) != 2 {
		t.Fatalf("live bulk stream returned %d records, want 2: %q", len(res.lines), res.lines)
	}
	for _, line := range res.lines {
		if strings.Contains(line, `"error"`) {
			t.Fatalf("bulk record failed: %s", line)
		}
	}
}

// TestBulkStoreAcrossServerRestart is the serving-layer half of the
// tentpole: two server processes sharing one store directory. The
// second server's first bulk record warm-starts from what the first
// server persisted, and /metrics reports the store counters.
func TestBulkStoreAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	stream := strings.Repeat(`{"workload":"lasso","spec":{"m":24,"lambda":0.3},"max_iter":5000,"abs_tol":1e-6,"rel_tol":1e-6}`+"\n", 2)

	runOnce := func() (first struct {
		Warm       bool   `json:"warm"`
		Iterations int    `json:"iterations"`
		Error      string `json:"error"`
	}, metrics string) {
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		_, ts := newTestServer(t, Config{Workers: 2, Store: st})
		resp, err := http.Post(ts.URL+"/v1/bulk", "application/x-ndjson", strings.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bytes.Split(body, []byte("\n"))[0], &first); err != nil {
			t.Fatalf("bad first record %q: %v", body, err)
		}
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		mtext, _ := io.ReadAll(mresp.Body)
		return first, string(mtext)
	}

	cold, metrics1 := runOnce()
	if cold.Error != "" || cold.Warm {
		t.Fatalf("first run's first record = %+v, want a clean cold solve", cold)
	}
	for _, want := range []string{"paradmm_store_hits_total 0", "paradmm_store_misses_total 1", "paradmm_store_puts_total 1"} {
		if !strings.Contains(metrics1, want) {
			t.Fatalf("first run metrics missing %q:\n%s", want, metrics1)
		}
	}

	warm, metrics2 := runOnce()
	if warm.Error != "" || !warm.Warm {
		t.Fatalf("restarted server's first record = %+v, want a store-warm solve", warm)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("store-warm open took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
	for _, want := range []string{"paradmm_store_hits_total 1", "paradmm_store_misses_total 0"} {
		if !strings.Contains(metrics2, want) {
			t.Fatalf("restarted server metrics missing %q:\n%s", want, metrics2)
		}
	}
	if !strings.Contains(metrics2, "paradmm_store_bytes ") || strings.Contains(metrics2, "paradmm_store_bytes 0\n") {
		t.Fatalf("restarted server metrics missing a positive paradmm_store_bytes:\n%s", metrics2)
	}
}
