package serve

import (
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/workload"
)

// TestSolveFailoverSurvivors: a solve request whose worker pool lists a
// dead endpoint, under the "survivors" policy, completes on the live
// workers; the response carries the failover trail and /metrics gains
// the recovery counters.
func TestSolveFailoverSurvivors(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go shard.ServeWorker(ln, shard.WorkerOptions{
			Builders: workload.Builders(),
			MeshWait: 2 * time.Second,
		})
		addrs[i] = "tcp:" + ln.Addr().String()
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "tcp:" + dead.Addr().String()
	dead.Close()

	_, ts := newTestServer(t, Config{Workers: 2, DialTimeout: 2 * time.Second})
	body := fmt.Sprintf(`{"workload":"mpc","spec":{"k":24},"max_iter":60,
		"executor":{"kind":"sharded","transport":"sockets","failover":"survivors",
		            "dial_attempts":1,"addrs":[%q,%q,%q]}}`,
		addrs[0], addrs[1], deadAddr)
	code, v := postSolve(t, ts, body)
	if code != 200 || v.Status != StatusDone {
		t.Fatalf("code %d, job %+v", code, v)
	}
	if v.Result == nil || v.Result.Failover == nil {
		t.Fatalf("no failover view in result: %+v", v.Result)
	}
	fo := v.Result.Failover
	if fo.Failovers < 1 || fo.LocalFallback {
		t.Fatalf("failover view %+v, want >=1 failover and no local fallback", fo)
	}
	if len(fo.Workers) != 2 {
		t.Fatalf("final workers %v, want the two live ones", fo.Workers)
	}
	if len(fo.Failures) == 0 {
		t.Fatalf("failover view carries no failure trail: %+v", fo)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, m := range []string{
		"paradmm_shard_failovers_total 1",
		"paradmm_shard_worker_failures_total",
		"paradmm_shard_workers_probed 3",
		"paradmm_shard_workers_alive 2",
	} {
		if !strings.Contains(metrics, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

// TestSolveFailoverValidation: failover policies are validated at
// admission — "survivors" without addrs (nothing to fail over to) and
// unknown policy names are 400s, not runtime surprises.
func TestSolveFailoverValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"sharded","shards":2,"transport":"sockets","failover":"survivors"}}`,
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"sharded","shards":2,"transport":"sockets","failover":"sacrifice"}}`,
		`{"workload":"mpc","spec":{"k":4},"executor":{"kind":"serial","failover":"local"}}`,
	}
	for i, body := range bad {
		if code, _ := postSolve(t, ts, body); code != 400 {
			t.Errorf("request %d admitted with code %d", i, code)
		}
	}
}
