package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admm"
	"repro/internal/bulk"
	"repro/internal/shard"
	"repro/internal/store"
)

// metrics aggregates service counters for the /metrics endpoint. The
// exposition format is the Prometheus text format, rendered by hand so
// the service stays dependency-free.
type metrics struct {
	mu sync.Mutex
	// requests counts finished solve admissions by workload and outcome
	// ("ok", "bad_request", "queue_full", "failed", "accepted").
	requests map[string]uint64
	// iterations and per-phase/solve wall time accumulate across jobs.
	iterations uint64
	phaseNanos [admm.NumPhases]int64
	solveNanos int64
	buildNanos int64

	// Sharded-executor aggregates: solve count, cumulative boundary
	// synchronization time, and the last run's partition shape (a
	// gauge — the footprint of the most recent sharded request).
	shardSolves        uint64
	shardSyncNanos     int64
	shardBoundaryNanos int64
	shardLast          shard.Stats

	// Failover-policy aggregates: dial+handshake retries burned,
	// worker-set shrinks, local-executor fallbacks, failed attempts
	// (each names one lost worker), and the last health probe taken
	// while failing over (a gauge pair: alive/probed).
	shardRetries        uint64
	shardFailovers      uint64
	shardLocalFallbacks uint64
	shardWorkerFailures uint64
	shardHealth         []shard.WorkerHealth

	// Fleet aggregates: planner verdicts by route, and warm-cache
	// handshake tallies folded out of sharded-solve stats (nonzero only
	// for solves run with the warm-cache handshake, i.e. fleet routes).
	fleetRouted         map[string]uint64
	shardCacheHits      uint64
	shardCacheGraphHits uint64
	shardCacheMisses    uint64

	// Bulk-stream aggregates: stream count by outcome ("ok", "aborted",
	// "rejected") plus cumulative record/solve counters reported by
	// finished pipelines (internal/bulk.Stats).
	bulkStreams    map[string]uint64
	bulkRecords    uint64
	bulkErrors     uint64
	bulkSolved     uint64
	bulkWarmStarts uint64
	bulkIterations uint64

	inflight     atomic.Int64
	bulkInflight atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:    map[string]uint64{},
		bulkStreams: map[string]uint64{},
		fleetRouted: map[string]uint64{},
	}
}

func (m *metrics) countRequest(workload, outcome string) {
	m.mu.Lock()
	m.requests[workload+"\x00"+outcome]++
	m.mu.Unlock()
}

func (m *metrics) recordSolve(res admm.Result, buildNanos int64) {
	m.mu.Lock()
	m.iterations += uint64(res.Iterations)
	for p, v := range res.PhaseNanos {
		m.phaseNanos[p] += v
	}
	m.solveNanos += res.Elapsed.Nanoseconds()
	m.buildNanos += buildNanos
	m.mu.Unlock()
}

// recordShard accumulates one sharded solve's partition and
// synchronization statistics.
func (m *metrics) recordShard(s shard.Stats) {
	m.mu.Lock()
	m.shardSolves++
	m.shardSyncNanos += s.SyncWaitNanos
	m.shardBoundaryNanos += s.BoundaryZNanos
	m.shardCacheHits += uint64(s.CacheHits)
	m.shardCacheGraphHits += uint64(s.CacheGraphHits)
	m.shardCacheMisses += uint64(s.CacheMisses)
	m.shardLast = s
	m.mu.Unlock()
}

// recordFailover folds one failover-policy solve's recovery trail into
// the aggregates (called for failed solves too — the trail is the
// point).
func (m *metrics) recordFailover(out shard.Outcome) {
	m.mu.Lock()
	m.shardRetries += uint64(out.HandshakeRetries)
	m.shardFailovers += uint64(out.Failovers)
	if out.LocalFallback {
		m.shardLocalFallbacks++
	}
	m.shardWorkerFailures += uint64(len(out.Failures))
	if out.Health != nil {
		m.shardHealth = out.Health
	}
	m.mu.Unlock()
}

func (m *metrics) countBulk(outcome string) {
	m.mu.Lock()
	m.bulkStreams[outcome]++
	m.mu.Unlock()
}

// recordBulk folds one finished bulk stream's pipeline statistics into
// the aggregates.
func (m *metrics) recordBulk(st bulk.Stats, outcome string) {
	m.mu.Lock()
	m.bulkStreams[outcome]++
	m.bulkRecords += st.Results
	m.bulkErrors += st.Errors
	m.bulkSolved += st.Solved
	m.bulkWarmStarts += st.WarmStarts
	m.bulkIterations += st.Iterations
	m.mu.Unlock()
}

// render writes the exposition text. Cache and queue gauges come from
// the server, which owns those components.
func (m *metrics) render(b *strings.Builder, queueDepth int, cacheHits, cacheMisses, cacheSize uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(b, "# HELP paradmm_requests_total Solve admissions by workload and outcome.\n")
	fmt.Fprintf(b, "# TYPE paradmm_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "\x00", 2)
		fmt.Fprintf(b, "paradmm_requests_total{workload=%q,outcome=%q} %d\n", parts[0], parts[1], m.requests[k])
	}

	fmt.Fprintf(b, "# HELP paradmm_iterations_total ADMM iterations executed.\n")
	fmt.Fprintf(b, "# TYPE paradmm_iterations_total counter\n")
	fmt.Fprintf(b, "paradmm_iterations_total %d\n", m.iterations)

	fmt.Fprintf(b, "# HELP paradmm_phase_nanos_total Per-phase execution time.\n")
	fmt.Fprintf(b, "# TYPE paradmm_phase_nanos_total counter\n")
	for p := admm.Phase(0); p < admm.NumPhases; p++ {
		fmt.Fprintf(b, "paradmm_phase_nanos_total{phase=%q} %d\n", p.String(), m.phaseNanos[p])
	}

	fmt.Fprintf(b, "# HELP paradmm_solve_nanos_total Wall time inside backends.\n")
	fmt.Fprintf(b, "# TYPE paradmm_solve_nanos_total counter\n")
	fmt.Fprintf(b, "paradmm_solve_nanos_total %d\n", m.solveNanos)

	fmt.Fprintf(b, "# HELP paradmm_build_nanos_total Wall time constructing factor graphs (cache misses).\n")
	fmt.Fprintf(b, "# TYPE paradmm_build_nanos_total counter\n")
	fmt.Fprintf(b, "paradmm_build_nanos_total %d\n", m.buildNanos)

	fmt.Fprintf(b, "# HELP paradmm_graph_cache_hits_total Graph cache hits.\n")
	fmt.Fprintf(b, "# TYPE paradmm_graph_cache_hits_total counter\n")
	fmt.Fprintf(b, "paradmm_graph_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(b, "# HELP paradmm_graph_cache_misses_total Graph cache misses.\n")
	fmt.Fprintf(b, "# TYPE paradmm_graph_cache_misses_total counter\n")
	fmt.Fprintf(b, "paradmm_graph_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintf(b, "# HELP paradmm_graph_cache_size Graphs currently pooled.\n")
	fmt.Fprintf(b, "# TYPE paradmm_graph_cache_size gauge\n")
	fmt.Fprintf(b, "paradmm_graph_cache_size %d\n", cacheSize)

	fmt.Fprintf(b, "# HELP paradmm_shard_solves_total Solves run on the sharded executor.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_solves_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_solves_total %d\n", m.shardSolves)
	fmt.Fprintf(b, "# HELP paradmm_shard_sync_wait_nanos_total Lead-shard time blocked at iteration barriers.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_sync_wait_nanos_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_sync_wait_nanos_total %d\n", m.shardSyncNanos)
	fmt.Fprintf(b, "# HELP paradmm_shard_boundary_z_nanos_total Lead-shard time combining boundary-variable z.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_boundary_z_nanos_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_boundary_z_nanos_total %d\n", m.shardBoundaryNanos)
	fmt.Fprintf(b, "# HELP paradmm_shard_boundary_vars Boundary variables in the last sharded solve's partition.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_boundary_vars gauge\n")
	fmt.Fprintf(b, "paradmm_shard_boundary_vars %d\n", m.shardLast.BoundaryVars)
	fmt.Fprintf(b, "# HELP paradmm_shard_boundary_edges Edges incident to boundary variables in the last sharded solve.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_boundary_edges gauge\n")
	fmt.Fprintf(b, "paradmm_shard_boundary_edges %d\n", m.shardLast.BoundaryEdges)
	fmt.Fprintf(b, "# HELP paradmm_shard_shards Shard count of the last sharded solve.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_shards gauge\n")
	fmt.Fprintf(b, "paradmm_shard_shards %d\n", m.shardLast.Shards)
	fmt.Fprintf(b, "# HELP paradmm_shard_bytes_per_iter Boundary-state payload bytes per iteration the last sharded solve's message transport moved (0 on the local transport; equals cut cost x 8 when the manifest is healthy).\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_bytes_per_iter gauge\n")
	fmt.Fprintf(b, "paradmm_shard_bytes_per_iter %g\n", m.shardLast.BytesPerIter)
	fmt.Fprintf(b, "# HELP paradmm_shard_cut_cost_words Degree-weighted cut cost of the last sharded solve's partition (predicted cross-shard words per iteration).\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_cut_cost_words gauge\n")
	fmt.Fprintf(b, "paradmm_shard_cut_cost_words %g\n", m.shardLast.CutCost)

	fmt.Fprintf(b, "# HELP paradmm_shard_retries_total Dial+handshake retries burned by sharded sockets solves.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_retries_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_retries_total %d\n", m.shardRetries)
	fmt.Fprintf(b, "# HELP paradmm_shard_failovers_total Worker-set shrinks: a lost worker's load re-partitioned onto survivors and the solve re-run cold.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_failovers_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_failovers_total %d\n", m.shardFailovers)
	fmt.Fprintf(b, "# HELP paradmm_shard_local_fallbacks_total Failover solves finished on the in-process fused executor after the remote pool was exhausted.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_local_fallbacks_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_local_fallbacks_total %d\n", m.shardLocalFallbacks)
	fmt.Fprintf(b, "# HELP paradmm_shard_worker_failures_total Solve attempts lost to a worker transport failure.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_worker_failures_total counter\n")
	fmt.Fprintf(b, "paradmm_shard_worker_failures_total %d\n", m.shardWorkerFailures)
	var alive int
	for _, h := range m.shardHealth {
		if h.Alive {
			alive++
		}
	}
	fmt.Fprintf(b, "# HELP paradmm_shard_workers_probed Workers probed by the most recent failover health check.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_workers_probed gauge\n")
	fmt.Fprintf(b, "paradmm_shard_workers_probed %d\n", len(m.shardHealth))
	fmt.Fprintf(b, "# HELP paradmm_shard_workers_alive Workers alive in the most recent failover health check.\n")
	fmt.Fprintf(b, "# TYPE paradmm_shard_workers_alive gauge\n")
	fmt.Fprintf(b, "paradmm_shard_workers_alive %d\n", alive)

	fmt.Fprintf(b, "# HELP paradmm_bulk_streams_total Bulk streams by outcome.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_streams_total counter\n")
	bulkKeys := make([]string, 0, len(m.bulkStreams))
	for k := range m.bulkStreams {
		bulkKeys = append(bulkKeys, k)
	}
	sort.Strings(bulkKeys)
	for _, k := range bulkKeys {
		fmt.Fprintf(b, "paradmm_bulk_streams_total{outcome=%q} %d\n", k, m.bulkStreams[k])
	}
	fmt.Fprintf(b, "# HELP paradmm_bulk_records_total Bulk result records written.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_records_total counter\n")
	fmt.Fprintf(b, "paradmm_bulk_records_total %d\n", m.bulkRecords)
	fmt.Fprintf(b, "# HELP paradmm_bulk_errors_total Bulk records that failed (decode, admission, or solve).\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_errors_total counter\n")
	fmt.Fprintf(b, "paradmm_bulk_errors_total %d\n", m.bulkErrors)
	fmt.Fprintf(b, "# HELP paradmm_bulk_solved_total Bulk solves completed.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_solved_total counter\n")
	fmt.Fprintf(b, "paradmm_bulk_solved_total %d\n", m.bulkSolved)
	fmt.Fprintf(b, "# HELP paradmm_bulk_warm_starts_total Bulk solves warm-started from a previous same-shape solution.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_warm_starts_total counter\n")
	fmt.Fprintf(b, "paradmm_bulk_warm_starts_total %d\n", m.bulkWarmStarts)
	fmt.Fprintf(b, "# HELP paradmm_bulk_iterations_total ADMM iterations executed by bulk solves.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_iterations_total counter\n")
	fmt.Fprintf(b, "paradmm_bulk_iterations_total %d\n", m.bulkIterations)
	fmt.Fprintf(b, "# HELP paradmm_bulk_inflight Bulk streams currently open.\n")
	fmt.Fprintf(b, "# TYPE paradmm_bulk_inflight gauge\n")
	fmt.Fprintf(b, "paradmm_bulk_inflight %d\n", m.bulkInflight.Load())

	fmt.Fprintf(b, "# HELP paradmm_jobs_inflight Jobs currently executing.\n")
	fmt.Fprintf(b, "# TYPE paradmm_jobs_inflight gauge\n")
	fmt.Fprintf(b, "paradmm_jobs_inflight %d\n", m.inflight.Load())

	fmt.Fprintf(b, "# HELP paradmm_queue_depth Accepted jobs waiting for a worker.\n")
	fmt.Fprintf(b, "# TYPE paradmm_queue_depth gauge\n")
	fmt.Fprintf(b, "paradmm_queue_depth %d\n", queueDepth)
}

// renderStoreMetrics writes the solution store's counters. Rendered
// only when the server was configured with a store, so a scrape of a
// storeless deployment carries no dead series.
func renderStoreMetrics(b *strings.Builder, st store.Stats) {
	fmt.Fprintf(b, "# HELP paradmm_store_hits_total Warm-start chains seeded from the solution store.\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_hits_total counter\n")
	fmt.Fprintf(b, "paradmm_store_hits_total %d\n", st.Hits)
	fmt.Fprintf(b, "# HELP paradmm_store_misses_total Store lookups that found nothing usable (absent, corrupt, or rejected).\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_misses_total counter\n")
	fmt.Fprintf(b, "paradmm_store_misses_total %d\n", st.Misses)
	fmt.Fprintf(b, "# HELP paradmm_store_puts_total Snapshots persisted to the solution store.\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_puts_total counter\n")
	fmt.Fprintf(b, "paradmm_store_puts_total %d\n", st.Puts)
	fmt.Fprintf(b, "# HELP paradmm_store_evictions_total Keys evicted by size-capped compaction.\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_evictions_total counter\n")
	fmt.Fprintf(b, "paradmm_store_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(b, "# HELP paradmm_store_keys Distinct shape keys currently stored.\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_keys gauge\n")
	fmt.Fprintf(b, "paradmm_store_keys %d\n", st.Keys)
	fmt.Fprintf(b, "# HELP paradmm_store_bytes Solution log size on disk.\n")
	fmt.Fprintf(b, "# TYPE paradmm_store_bytes gauge\n")
	fmt.Fprintf(b, "paradmm_store_bytes %d\n", st.Bytes)
}
