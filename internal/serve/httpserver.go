package serve

import (
	"net/http"
	"time"
)

// Default edge timeouts for NewHTTPServer.
const (
	// DefaultReadHeaderTimeout bounds how long a connection may take to
	// deliver its request headers. Without it a client that trickles
	// header bytes (slowloris) pins a connection — and, on /v1/bulk, one
	// of the BulkStreams slots — indefinitely.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultIdleTimeout bounds how long a keep-alive connection may sit
	// between requests.
	DefaultIdleTimeout = 120 * time.Second
)

// NewHTTPServer wraps a handler in an http.Server with the serving-edge
// timeouts this service needs: ReadHeaderTimeout against stalled-header
// connections and IdleTimeout against idle keep-alives. It deliberately
// sets NO WriteTimeout and NO whole-request ReadTimeout — a bulk stream
// legitimately reads its request body and writes results for as long as
// the solves take, and either timeout would kill long streams mid-
// flight. Non-positive arguments take the defaults above.
func NewHTTPServer(addr string, h http.Handler, readHeaderTimeout, idleTimeout time.Duration) *http.Server {
	if readHeaderTimeout <= 0 {
		readHeaderTimeout = DefaultReadHeaderTimeout
	}
	if idleTimeout <= 0 {
		idleTimeout = DefaultIdleTimeout
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}
