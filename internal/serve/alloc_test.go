package serve

import (
	"net/http"
	"testing"
)

// nopResponseWriter is the cheapest possible ResponseWriter: the test
// measures writeJSON's own allocations, not the recorder's.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// TestWriteJSONSteadyStateAllocs pins the pooled response-encoder
// scratch: after warm-up, writeJSON must not rebuild its encoder or
// regrow its buffer per response. The bound leaves room for
// encoding/json's own per-Encode bookkeeping but fails if anyone
// reverts to json.MarshalIndent-per-request (which costs the full
// buffer plus indent copies every call).
func TestWriteJSONSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode makes sync.Pool drop items at random; steady-state alloc counts are meaningless")
	}
	w := nopResponseWriter{h: make(http.Header)}
	body := errorBody{Error: "steady-state probe"}
	// Warm the pool and the reflect type cache.
	for i := 0; i < 4; i++ {
		writeJSON(w, http.StatusOK, body)
	}
	allocs := testing.AllocsPerRun(100, func() {
		writeJSON(w, http.StatusOK, body)
	})
	if allocs > 4 {
		t.Fatalf("writeJSON allocates %.1f objects per response in steady state, want <= 4", allocs)
	}
}
