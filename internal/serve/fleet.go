package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/admm"
	"repro/internal/fleet"
)

// Fleet wiring: when Config.Fleet is set (paradmm-serve -fleet-addrs),
// eligible solve requests pass through the registry's admission planner
// before execution. The planner routes each job local, remote (onto
// leased shardworkers with the warm-cache handshake and survivor
// failover), or shed (HTTP 429 — the healthy fleet has no free session
// slots and queueing behind a busy shardworker would only move the 429
// to a refused handshake). GET /v1/fleet exposes the registry snapshot;
// /metrics grows a paradmm_fleet_* section.

// fleetEligible reports whether a request's executor spec delegates the
// local-vs-remote choice to the fleet planner: an unset or auto kind,
// or a sharded sockets spec that names no workers of its own. Specs
// that pin explicit addrs (or any other concrete executor) keep their
// requested behavior.
func fleetEligible(spec admm.ExecutorSpec) bool {
	switch spec.Kind {
	case "", admm.ExecAuto:
		return spec.Transport == "" && len(spec.Addrs) == 0
	case admm.ExecSharded:
		return spec.Transport == admm.TransportSockets && len(spec.Addrs) == 0
	}
	return false
}

// FleetView is the GET /v1/fleet body.
type FleetView struct {
	Workers         []fleet.Worker `json:"workers"`
	Stats           fleet.Stats    `json:"stats"`
	ProbeIntervalMS int            `json:"probe_interval_ms"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fleet == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no fleet configured (start paradmm-serve with -fleet-addrs)"})
		return
	}
	writeJSON(w, http.StatusOK, FleetView{
		Workers:         s.cfg.Fleet.Snapshot(),
		Stats:           s.cfg.Fleet.Stats(),
		ProbeIntervalMS: int(s.cfg.Fleet.ProbeInterval() / time.Millisecond),
	})
}

// countFleetRoute tallies one planner verdict.
func (m *metrics) countFleetRoute(route string) {
	m.mu.Lock()
	m.fleetRouted[route]++
	m.mu.Unlock()
}

// renderFleetMetrics writes the paradmm_fleet_* section: worker states
// and lease load from the registry, route verdicts and warm-cache
// handshake tallies from the request path. Rendered only when a fleet
// is configured.
func (s *Server) renderFleetMetrics(b *strings.Builder) {
	st := s.cfg.Fleet.Stats()
	fmt.Fprintf(b, "# HELP paradmm_fleet_workers Registered shardworkers by lifecycle state.\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_workers gauge\n")
	for _, state := range []fleet.State{fleet.StateJoining, fleet.StateHealthy, fleet.StateSuspect, fleet.StateDead} {
		fmt.Fprintf(b, "paradmm_fleet_workers{state=%q} %d\n", state, st.States[state])
	}
	fmt.Fprintf(b, "# HELP paradmm_fleet_probe_rounds_total Registry health-probe rounds completed.\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_probe_rounds_total counter\n")
	fmt.Fprintf(b, "paradmm_fleet_probe_rounds_total %d\n", st.Rounds)
	fmt.Fprintf(b, "# HELP paradmm_fleet_in_flight Session slots currently leased to running solves.\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_in_flight gauge\n")
	fmt.Fprintf(b, "paradmm_fleet_in_flight %d\n", st.InFlight)
	fmt.Fprintf(b, "# HELP paradmm_fleet_solves_total Leases released back to the registry (worker-solves).\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_solves_total counter\n")
	fmt.Fprintf(b, "paradmm_fleet_solves_total %d\n", st.Solves)

	s.met.mu.Lock()
	routes := make([]string, 0, len(s.met.fleetRouted))
	for k := range s.met.fleetRouted {
		routes = append(routes, k)
	}
	sort.Strings(routes)
	fmt.Fprintf(b, "# HELP paradmm_fleet_routed_total Planner verdicts by route.\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_routed_total counter\n")
	for _, k := range routes {
		fmt.Fprintf(b, "paradmm_fleet_routed_total{route=%q} %d\n", k, s.met.fleetRouted[k])
	}
	hits, graphHits, misses := s.met.shardCacheHits, s.met.shardCacheGraphHits, s.met.shardCacheMisses
	s.met.mu.Unlock()

	fmt.Fprintf(b, "# HELP paradmm_fleet_cache_hits_total Warm-cache handshakes that skipped both the workload and state down-sync (state tier).\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_cache_hits_total counter\n")
	fmt.Fprintf(b, "paradmm_fleet_cache_hits_total %d\n", hits)
	fmt.Fprintf(b, "# HELP paradmm_fleet_cache_graph_hits_total Warm-cache handshakes that reused the cached graph but re-pushed state (graph tier).\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_cache_graph_hits_total counter\n")
	fmt.Fprintf(b, "paradmm_fleet_cache_graph_hits_total %d\n", graphHits)
	fmt.Fprintf(b, "# HELP paradmm_fleet_cache_misses_total Warm-cache handshakes that fell back to the full workload down-sync.\n")
	fmt.Fprintf(b, "# TYPE paradmm_fleet_cache_misses_total counter\n")
	fmt.Fprintf(b, "paradmm_fleet_cache_misses_total %d\n", misses)
}
