// Package serve implements the batched solve service: an HTTP JSON API
// that accepts factor-graph problem specs for the repository's workloads
// (lasso, svm, mpc, packing) and dispatches them onto a bounded worker
// pool running the internal/admm executors.
//
// Endpoints:
//
//	POST /v1/solve     submit a spec; waits for the result by default,
//	                   or returns 202 + a job id with {"wait": false}
//	POST /v1/bulk      stream JSONL specs in, JSONL results out (chunked,
//	                   input order, per-record error isolation); same-
//	                   shape specs share a cached graph and warm-start
//	                   from the previous solution (internal/bulk)
//	GET  /v1/jobs/{id} poll an async job
//	GET  /healthz      liveness + accepted workloads
//	GET  /metrics      Prometheus text: requests, iterations, per-phase
//	                   time, cache and queue gauges
//
// Two knobs bound admission (Config.Workers, Config.QueueDepth); a
// shape-keyed graph cache (internal/graph.Cache) lets repeated requests
// skip factor-graph construction, which for the heavier workloads
// (lasso's per-block Cholesky pre-factorizations, packing's O(N^2)
// collision nodes) dominates short solves. Executor selection is
// per-request: any of the shared-memory strategies of internal/admm
// (serial, parallel-for, barrier, async, sharded) with their knobs,
// or kind "auto" to resolve serial / parallel-for / sharded from the
// graph's shape; the fused two-pass schedule is the default for every
// CPU executor ({"fused": false} forces the five-phase reference).
// Sharded solves take a per-request boundary-exchange transport
// ({"transport": "sockets"} with optional {"addrs": [...]} naming
// paradmm-shardworker processes — the server ships the request's
// workload+spec to them as the rebuildable problem reference; see
// docs/transport.md) and additionally report partition/boundary/
// traffic statistics through /metrics (paradmm_shard_*).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"errors"

	"repro/internal/admm"
	"repro/internal/fleet"
	"repro/internal/graph"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config tunes the service.
type Config struct {
	// Workers caps concurrent solves (default GOMAXPROCS).
	Workers int
	// QueueDepth caps accepted-but-not-started jobs (default 64);
	// admissions beyond it get 429.
	QueueDepth int
	// CachePerKey bounds pooled graphs per shape key (default 2).
	CachePerKey int
	// MaxIterLimit rejects specs asking for more iterations (default
	// 200000), protecting the pool from unbounded requests.
	MaxIterLimit int
	// JobHistory bounds the finished-job registry (default 1024).
	JobHistory int
	// BulkStreams caps concurrent POST /v1/bulk streams (default 2);
	// streams beyond it get 429. BulkWorkers sets each stream's
	// solve-stage worker count (default Workers).
	BulkStreams int
	BulkWorkers int
	// MaxBodyBytes caps the POST /v1/solve request body (default 1 MiB);
	// larger bodies get 413. Bulk streams are exempt — they are bounded
	// per line by the pipeline's MaxLineBytes instead.
	MaxBodyBytes int64
	// Store, when non-nil, is the persistent warm-start solution store
	// shared by every bulk stream (and across restarts, by whoever opens
	// the same directory next). See internal/store.
	Store *store.Store
	// Fleet, when non-nil, is the persistent shardworker registry:
	// eligible requests (executor kind unset/auto, or sharded sockets
	// with no pinned addrs) pass through its admission planner, which
	// routes them local, onto leased fleet workers with the warm-cache
	// handshake, or sheds them with 429 when every healthy worker's
	// session slot is taken. The caller owns the registry's probe loop
	// (fleet.Registry.Run) and its shutdown.
	Fleet *fleet.Registry
	// FleetPlanner tunes fleet admission; zero values take the auto
	// policy's thresholds (see fleet.PlannerConfig).
	FleetPlanner fleet.PlannerConfig
	// DialTimeout/HandshakeTimeout are the server-wide defaults for
	// sharded sockets solves whose specs leave dial_timeout_ms /
	// handshake_timeout_ms unset (zero keeps the shard package
	// defaults). Set from paradmm-serve's -dial-timeout and
	// -handshake-timeout flags.
	DialTimeout      time.Duration
	HandshakeTimeout time.Duration
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxIterLimit <= 0 {
		c.MaxIterLimit = 200000
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.BulkStreams <= 0 {
		c.BulkStreams = 2
	}
	if c.BulkWorkers <= 0 {
		c.BulkWorkers = c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
}

// SolveRequest is the POST /v1/solve body.
type SolveRequest struct {
	// Workload names the problem domain: one of Workloads().
	Workload string `json:"workload"`
	// Spec is the workload-specific problem description (lasso.Spec,
	// svm.Spec, mpc.Spec, packing.Spec).
	Spec json.RawMessage `json:"spec"`
	// Executor selects the backend; zero value is serial.
	Executor admm.ExecutorSpec `json:"executor"`
	// MaxIter is the iteration budget (default 1000).
	MaxIter int `json:"max_iter,omitempty"`
	// AbsTol/RelTol enable early stopping on the ADMM residuals.
	AbsTol float64 `json:"abs_tol,omitempty"`
	RelTol float64 `json:"rel_tol,omitempty"`
	// Wait, when false, returns 202 immediately with a job id to poll.
	// Omitted or true blocks until the solve finishes.
	Wait *bool `json:"wait,omitempty"`
}

// SolveResult is the solved-job payload.
type SolveResult struct {
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	// Primal/Dual are the final residuals, present only when residual
	// checking ran (tolerances were set).
	Primal     *float64           `json:"primal,omitempty"`
	Dual       *float64           `json:"dual,omitempty"`
	ElapsedNS  int64              `json:"elapsed_ns"`
	BuildNS    int64              `json:"build_ns"`
	PhaseNanos map[string]int64   `json:"phase_nanos"`
	Metrics    map[string]float64 `json:"metrics"`
	// Failover reports the recovery trail of a solve that ran under an
	// executor failover policy (absent otherwise).
	Failover *FailoverView `json:"failover,omitempty"`
}

// FailoverView is the response-side summary of a failover-policy solve:
// what shard.SolveWithFailover did to produce the result.
type FailoverView struct {
	// Attempts counts full solve attempts, including the successful one.
	Attempts int `json:"attempts"`
	// DialRetries is the successful attempt's dial+handshake retries.
	DialRetries int `json:"dial_retries,omitempty"`
	// Failovers counts worker-set shrinks (re-partition + cold re-run).
	Failovers int `json:"failovers,omitempty"`
	// LocalFallback marks a result computed by the in-process fused
	// executor after the remote pool was exhausted.
	LocalFallback bool `json:"local_fallback,omitempty"`
	// Backend names the backend that produced the result.
	Backend string `json:"backend,omitempty"`
	// Workers is the worker set that produced the result (empty when
	// LocalFallback).
	Workers []string `json:"workers,omitempty"`
	// Failures is the error trail of the failed attempts, in order.
	Failures []string `json:"failures,omitempty"`
}

// JobView is the JSON shape of a job in responses.
type JobView struct {
	ID       string            `json:"id"`
	Workload string            `json:"workload"`
	Status   string            `json:"status"`
	Executor admm.ExecutorSpec `json:"executor"`
	CacheHit bool              `json:"cache_hit"`
	// Shed marks a job rejected by the fleet admission planner (the
	// request saw HTTP 429; async pollers see this flag).
	Shed   bool         `json:"shed,omitempty"`
	Error  string       `json:"error,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Job is one admitted solve.
type Job struct {
	id       string
	workload string
	key      string
	rawSpec  json.RawMessage
	build    func() (problem, error)
	executor admm.ExecutorSpec
	maxIter  int
	absTol   float64
	relTol   float64

	mu       sync.Mutex
	status   string
	cacheHit bool
	shed     bool
	err      string
	result   *SolveResult
	done     chan struct{}
}

func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:       j.id,
		Workload: j.workload,
		Status:   j.status,
		Executor: j.executor,
		CacheHit: j.cacheHit,
		Shed:     j.shed,
		Error:    j.err,
		Result:   j.result,
	}
}

// Server is the batched solve service. Create with New, mount Handler,
// Close on shutdown.
type Server struct {
	cfg     Config
	pool    *pool
	cache   *graph.Cache
	met     *metrics
	bulkSem chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID uint64
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:     cfg,
		cache:   graph.NewCache(cfg.CachePerKey),
		met:     newMetrics(),
		jobs:    map[string]*Job{},
		bulkSem: make(chan struct{}, cfg.BulkStreams),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.runJob)
	return s
}

// Close drains the pool.
func (s *Server) Close() { s.pool.Close() }

// CacheStats exposes graph-cache counters (used by tests and /metrics).
func (s *Server) CacheStats() graph.CacheStats { return s.cache.Stats() }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/bulk", s.handleBulk)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// jsonScratch pools response-encoding state: the buffer and its bound
// encoder live together, so steady-state responses reuse both instead
// of rebuilding an encoder (and growing a fresh buffer) per request.
var jsonScratch = sync.Pool{New: func() any {
	s := &respScratch{}
	s.enc = json.NewEncoder(&s.buf)
	s.enc.SetIndent("", "  ")
	return s
}}

type respScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	s := jsonScratch.Get().(*respScratch)
	defer jsonScratch.Put(s)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		// Response payloads are fixed structs with sanitized floats;
		// fall back to a minimal body rather than a broken one.
		s.buf.Reset()
		fmt.Fprintf(&s.buf, "{\n  \"error\": \"encode failure\"\n}\n")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(s.buf.Bytes())
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	// Cap the body before touching it: an unbounded decode would let one
	// client buffer arbitrary bytes into the process.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.met.countRequest("unknown", "too_large")
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return
		}
		s.met.countRequest("unknown", "bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	adm, err := workload.Parse(req.Workload, req.Spec)
	if err != nil {
		name := adm.Workload
		if name == "" {
			name = "unknown"
		}
		s.met.countRequest(name, "bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}
	wl := adm.Workload
	if err := req.Executor.Validate(); err != nil {
		s.met.countRequest(wl, "bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad executor: " + err.Error()})
		return
	}
	if req.MaxIter == 0 {
		req.MaxIter = 1000
	}
	if req.MaxIter < 0 || req.MaxIter > s.cfg.MaxIterLimit {
		s.met.countRequest(wl, "bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("max_iter = %d out of range (1..%d)", req.MaxIter, s.cfg.MaxIterLimit),
		})
		return
	}

	job := &Job{
		workload: wl,
		key:      adm.Key,
		rawSpec:  req.Spec,
		build:    adm.Build,
		executor: req.Executor,
		maxIter:  req.MaxIter,
		absTol:   req.AbsTol,
		relTol:   req.RelTol,
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
	s.register(job)
	if err := s.pool.Submit(job); err != nil {
		s.unregister(job.id)
		s.met.countRequest(wl, "queue_full")
		code := http.StatusTooManyRequests
		if err == ErrClosed {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}

	if req.Wait != nil && !*req.Wait {
		s.met.countRequest(wl, "accepted")
		writeJSON(w, http.StatusAccepted, job.view())
		return
	}
	select {
	case <-job.done:
	case <-r.Context().Done():
		// Client went away; the job keeps running and stays pollable.
		s.met.countRequest(wl, "abandoned")
		writeJSON(w, http.StatusAccepted, job.view())
		return
	}
	v := job.view()
	if v.Status == StatusFailed {
		if v.Shed {
			// The fleet planner refused admission: every healthy worker's
			// session slot is leased. 429 tells the client to back off,
			// exactly like a full queue.
			s.met.countRequest(wl, "shed")
			writeJSON(w, http.StatusTooManyRequests, v)
			return
		}
		s.met.countRequest(wl, "failed")
		writeJSON(w, http.StatusBadRequest, v)
		return
	}
	s.met.countRequest(wl, "ok")
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job.view())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"workloads": Workloads(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	cs := s.cache.Stats()
	s.met.render(&b, s.pool.Depth(), cs.Hits, cs.Misses, uint64(cs.Size))
	if s.cfg.Store != nil {
		renderStoreMetrics(&b, s.cfg.Store.Stats())
	}
	if s.cfg.Fleet != nil {
		s.renderFleetMetrics(&b)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Write([]byte(b.String()))
}

func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Prune oldest finished jobs beyond the history bound.
	for len(s.order) > s.cfg.JobHistory {
		oldest := s.jobs[s.order[0]]
		oldest.mu.Lock()
		finished := oldest.status == StatusDone || oldest.status == StatusFailed
		oldest.mu.Unlock()
		if !finished {
			break
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		delete(s.jobs, id)
		for i, o := range s.order {
			if o == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// runJob executes one admitted solve on a pool worker: check the graph
// cache, build on miss, reset state, solve with the requested executor,
// record metrics, and return the graph to the cache.
func (s *Server) runJob(j *Job) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	j.mu.Lock()
	j.status = StatusRunning
	j.mu.Unlock()

	fail := func(err error) {
		j.mu.Lock()
		j.status = StatusFailed
		j.err = err.Error()
		j.mu.Unlock()
		close(j.done)
	}

	// The sockets transport's mid-solve failures are fail-stop panics
	// (a dead shard-worker process, a desynchronized stream — see
	// docs/transport.md); convert them into a failed job instead of
	// letting one tenant's broken worker pool take down the server.
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		j.mu.Lock()
		finished := j.status == StatusDone || j.status == StatusFailed
		j.mu.Unlock()
		if finished {
			// Nothing left to report the failure to; re-raise.
			panic(rec)
		}
		fail(fmt.Errorf("solve aborted: %v", rec))
	}()

	var buildNanos int64
	p, hit := s.cacheGet(j.key)
	if !hit {
		t := time.Now()
		built, err := j.build()
		if err != nil {
			fail(err)
			return
		}
		buildNanos = time.Since(t).Nanoseconds()
		p = built
	}
	j.mu.Lock()
	j.cacheHit = hit
	j.mu.Unlock()

	p.Reset()
	// Build the backend explicitly (rather than through admm.Solve) so
	// sharded executors can be asked for their partition/boundary stats
	// after the run. The sockets transport additionally needs the
	// problem reference: its worker processes rebuild the graph from the
	// request's workload + spec, exactly what this job admitted.
	g := p.FactorGraph()
	spec := j.executor
	if s.cfg.Fleet != nil && fleetEligible(spec) {
		d := s.cfg.Fleet.Plan(g, s.cfg.FleetPlanner)
		// The lease (if any) outlives the whole solve, including the
		// failover loop's re-partitioned retries.
		defer d.Release()
		s.met.countFleetRoute(string(d.Route))
		switch d.Route {
		case fleet.RouteShed:
			j.mu.Lock()
			j.shed = true
			j.mu.Unlock()
			fail(fmt.Errorf("fleet saturated: %s", d.Reason))
			return
		case fleet.RouteRemote:
			spec = d.Spec(s.cfg.Fleet, spec)
		}
	}
	useFailover := false
	if spec.Transport == admm.TransportSockets && len(spec.Addrs) > 0 {
		spec.Problem = &admm.ProblemRef{Workload: j.workload, Spec: j.rawSpec}
		// Server-wide reliability defaults fill in where the request's
		// spec left the knobs unset.
		if spec.DialTimeoutMS == 0 && s.cfg.DialTimeout > 0 {
			spec.DialTimeoutMS = int(s.cfg.DialTimeout / time.Millisecond)
		}
		if spec.HandshakeTimeoutMS == 0 && s.cfg.HandshakeTimeout > 0 {
			spec.HandshakeTimeoutMS = int(s.cfg.HandshakeTimeout / time.Millisecond)
		}
		useFailover = spec.Failover == admm.FailoverSurvivors || spec.Failover == admm.FailoverLocal
	}
	var res admm.Result
	var fo *FailoverView
	if useFailover {
		// The recovery loop lives in shard.SolveWithFailover: on worker
		// loss it re-partitions onto the probed survivors (or finishes
		// on the local fused executor) instead of failing the job. Jobs
		// outlive their submitting requests — async clients poll — so
		// the solve is deliberately not bound to the request context.
		out, err := shard.SolveWithFailover(context.Background(), g, admm.SolveOptions{
			Executor: spec,
			MaxIter:  j.maxIter,
			AbsTol:   j.absTol,
			RelTol:   j.relTol,
		})
		s.met.recordFailover(out)
		if err != nil {
			fail(err)
			return
		}
		if out.HasShardStats {
			s.met.recordShard(out.ShardStats)
		}
		res = out.Result
		fo = &FailoverView{
			Attempts:      out.Attempts,
			DialRetries:   out.HandshakeRetries,
			Failovers:     out.Failovers,
			LocalFallback: out.LocalFallback,
			Backend:       out.Backend,
			Workers:       out.FinalAddrs,
			Failures:      out.Failures,
		}
	} else {
		backend, err := spec.NewBackend(g)
		if err != nil {
			fail(err)
			return
		}
		// Deferred (not inline) so a recovered mid-solve panic still
		// releases the workers/connections; every backend's Close is
		// idempotent.
		defer backend.Close()
		res, err = admm.Run(g, admm.Options{
			MaxIter: j.maxIter,
			Backend: backend,
			AbsTol:  j.absTol,
			RelTol:  j.relTol,
		})
		if sb, ok := backend.(shard.StatsReporter); ok && err == nil {
			s.met.recordShard(sb.Stats())
		}
		if err != nil {
			fail(err)
			return
		}
	}
	s.cache.Put(j.key, p)
	s.met.recordSolve(res, buildNanos)

	r := &SolveResult{
		Iterations: res.Iterations,
		Converged:  res.Converged,
		ElapsedNS:  res.Elapsed.Nanoseconds(),
		BuildNS:    buildNanos,
		PhaseNanos: map[string]int64{},
		Metrics:    map[string]float64{},
		Failover:   fo,
	}
	// Drop non-finite quality metrics (a diverged nonconvex solve can
	// produce them) — NaN/Inf are not representable in JSON and would
	// abort encoding mid-response.
	for k, v := range p.Metrics() {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			r.Metrics[k] = v
		}
	}
	if !math.IsNaN(res.Primal) {
		pr := res.Primal
		r.Primal = &pr
	}
	if !math.IsNaN(res.Dual) {
		du := res.Dual
		r.Dual = &du
	}
	for ph := admm.Phase(0); ph < admm.NumPhases; ph++ {
		r.PhaseNanos[ph.String()] = res.PhaseNanos[ph]
	}
	j.mu.Lock()
	j.status = StatusDone
	j.result = r
	j.mu.Unlock()
	close(j.done)
}

// cacheGet narrows the cache's Pooled to the serve-side problem type.
func (s *Server) cacheGet(key string) (problem, bool) {
	v, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	p, ok := v.(problem)
	if !ok {
		return nil, false
	}
	return p, true
}
